"""Functional ops on autograd tensors: convolution via im2col, zero
upsampling (the building block of transposed convolution), and pooling
helpers used by the attention blocks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ModelError
from repro.nn.tensor import Tensor


def _im2col(
    data: np.ndarray, kh: int, kw: int, stride: int,
    out: np.ndarray = None,
) -> Tuple[np.ndarray, int, int]:
    """Extract sliding (kh, kw) patches of an NCHW array.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(C*kh*kw, N*out_h*out_w)`` -- the batch folded into the spatial
    axis so a single BLAS GEMM performs the whole convolution. When
    ``out`` (a contiguous ``(C*kh*kw, N*out_h*out_w)`` buffer) is
    given, the patches are copied into it instead of a fresh
    allocation -- the compiled inference plans reuse one scratch
    buffer per conv across calls.
    """
    n, c, h, w = data.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    shape = (c, kh, kw, n, out_h, out_w)
    strides = (
        data.strides[1],
        data.strides[2],
        data.strides[3],
        data.strides[0],
        data.strides[2] * stride,
        data.strides[3] * stride,
    )
    patches = np.lib.stride_tricks.as_strided(data, shape, strides)
    if out is not None:
        np.copyto(out.reshape(shape), patches)
        return out, out_h, out_w
    cols = np.ascontiguousarray(patches).reshape(
        c * kh * kw, n * out_h * out_w
    )
    return cols, out_h, out_w


def _col2im(
    cols: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
) -> np.ndarray:
    """Scatter-add column patches back into an NCHW array (im2col adjoint).

    ``cols`` uses the (C*kh*kw, N*out_h*out_w) layout of :func:`_im2col`.
    """
    n, c, h, w = image_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    patches = cols.reshape(c, kh, kw, n, out_h, out_w)
    image = np.zeros(image_shape, dtype=cols.dtype)
    view = image.transpose(1, 0, 2, 3)  # (C, N, H, W) view
    for i in range(kh):
        for j in range(kw):
            view[
                :, :, i : i + stride * out_h : stride,
                j : j + stride * out_w : stride,
            ] += patches[:, i, j]
    return image


def conv2d(
    x: Tensor, weight: Tensor, bias: Tensor = None, stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (cross-correlation) on NCHW input.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)``.
    """
    if x.ndim != 4:
        raise ModelError(f"conv2d expects NCHW input, got shape {x.shape}")
    if weight.ndim != 4:
        raise ModelError("conv2d weight must be (O, C, kh, kw)")
    if x.shape[1] != weight.shape[1]:
        raise ModelError(
            f"input has {x.shape[1]} channels but weight expects "
            f"{weight.shape[1]}"
        )
    if stride < 1:
        raise ModelError("stride must be >= 1")
    if padding:
        x = x.pad2d(padding)

    n, c, h, w = x.shape
    out_c, _, kh, kw = weight.shape
    if h < kh or w < kw:
        raise ModelError("input smaller than kernel after padding")
    cols, out_h, out_w = _im2col(x.data, kh, kw, stride)
    w_flat = weight.data.reshape(out_c, -1)
    # Single GEMM over the batch-folded columns: (O, K) @ (K, N*M).
    out_flat = w_flat @ cols  # (O, N*M)
    out_data = np.moveaxis(
        out_flat.reshape(out_c, n, out_h, out_w), 0, 1
    ).copy()
    if bias is not None:
        out_data += bias.data.reshape(1, out_c, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        grad2d = np.ascontiguousarray(
            np.moveaxis(grad, 1, 0)
        ).reshape(out_c, -1)
        if weight.requires_grad:
            gw = (grad2d @ cols.T).reshape(weight.data.shape)
            weight._accumulate(gw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            gcols = w_flat.T @ grad2d
            gx = _col2im(gcols, (n, c, h, w), kh, kw, stride)
            x._accumulate(gx)

    return Tensor._make(out_data, parents, backward)


def upsample_zeros(x: Tensor, stride: int) -> Tensor:
    """Insert ``stride - 1`` zeros between spatial samples of NCHW input.

    Composing with :func:`conv2d` yields a transposed convolution: the
    output doubles (stride 2) the spatial size before the conv smooths it.
    """
    if x.ndim != 4:
        raise ModelError("upsample_zeros expects NCHW input")
    if stride < 1:
        raise ModelError("stride must be >= 1")
    if stride == 1:
        return x
    n, c, h, w = x.shape
    out_data = np.zeros((n, c, h * stride, w * stride), dtype=x.data.dtype)
    out_data[:, :, ::stride, ::stride] = x.data

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad[:, :, ::stride, ::stride])

    return Tensor._make(out_data, (x,), backward)


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float,
    batch_stats: bool,
) -> Tensor:
    """Fused batch normalisation over NCHW channels.

    ``mean`` / ``var`` are per-channel statistics (batch statistics in
    training, running statistics in eval); ``batch_stats`` selects the
    backward formula (batch statistics depend on ``x``, running ones do
    not). Fusing the op avoids the long elementwise autograd chains the
    naive formulation creates.
    """
    if x.ndim != 4:
        raise ModelError("batch_norm2d expects NCHW input")
    n, c, h, w = x.shape
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mean.reshape(1, c, 1, 1)) * inv_std.reshape(1, c, 1, 1)
    out_data = xhat * gamma.data.reshape(1, c, 1, 1) + beta.data.reshape(
        1, c, 1, 1
    )
    m = n * h * w

    def backward(grad: np.ndarray) -> None:
        if gamma.requires_grad:
            gamma._accumulate((grad * xhat).sum(axis=(0, 2, 3)))
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            scale = (gamma.data * inv_std).reshape(1, c, 1, 1)
            if batch_stats:
                dbeta = grad.sum(axis=(0, 2, 3), keepdims=True).reshape(
                    1, c, 1, 1
                )
                dgamma = (grad * xhat).sum(
                    axis=(0, 2, 3), keepdims=True
                ).reshape(1, c, 1, 1)
                gx = scale * (grad - dbeta / m - xhat * dgamma / m)
            else:
                gx = scale * grad
            x._accumulate(gx)

    return Tensor._make(out_data, (x, gamma, beta), backward)


def global_avg_pool(x: Tensor, axes: Tuple[int, ...]) -> Tensor:
    """Mean over the given axes, keeping dims."""
    return x.mean(axis=axes, keepdims=True)


def global_max_pool(x: Tensor, axes: Tuple[int, ...]) -> Tensor:
    """Max over the given axes (applied sequentially), keeping dims."""
    out = x
    for axis in sorted(axes):
        out = out.max(axis=axis, keepdims=True)
    return out


def flatten(x: Tensor, start_axis: int = 1) -> Tensor:
    """Flatten all axes from ``start_axis`` onward."""
    lead = x.shape[:start_axis]
    return x.reshape(lead + (-1,))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def group_norm(
    x: Tensor, groups: int, gamma: Tensor, beta: Tensor, eps: float = 1e-5
) -> Tensor:
    """Group normalisation over NCHW input.

    Normalises each sample's channel groups independently of the batch,
    so train/eval behaviour is identical -- a batch-size-robust
    alternative to batch norm for tiny-batch training.
    """
    if x.ndim != 4:
        raise ModelError("group_norm expects NCHW input")
    n, c, h, w = x.shape
    if c % groups != 0:
        raise ModelError(
            f"channels ({c}) must be divisible by groups ({groups})"
        )
    grouped = x.reshape(n, groups, c // groups, h, w)
    mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
    centred = grouped - mean
    var = (centred * centred).mean(axis=(2, 3, 4), keepdims=True)
    normed = centred * ((var + eps) ** -0.5)
    out = normed.reshape(n, c, h, w)
    return out * gamma.reshape(1, c, 1, 1) + beta.reshape(1, c, 1, 1)
