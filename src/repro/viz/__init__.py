"""Dependency-free visualisation: ASCII skeleton renders, SVG projections
of skeletons and meshes, and Wavefront OBJ export of MANO meshes."""

from repro.viz.ascii_render import ascii_skeleton, ascii_range_profile
from repro.viz.svg import skeleton_svg, mesh_svg
from repro.viz.mesh_io import save_obj, mesh_summary

__all__ = [
    "ascii_skeleton",
    "ascii_range_profile",
    "skeleton_svg",
    "mesh_svg",
    "save_obj",
    "mesh_summary",
]
