"""ASCII renderings for terminal inspection of skeletons and spectra."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ReproError
from repro.hand.joints import FINGER_CHAINS, NUM_JOINTS, WRIST


def ascii_skeleton(
    joints: np.ndarray, width: int = 40, height: int = 16,
    plane: str = "yz",
) -> str:
    """Project a 21-joint skeleton to ASCII art.

    ``plane`` picks the projection: ``"yz"`` (front view, default),
    ``"xy"`` (top view) or ``"xz"`` (side view). The wrist is marked
    ``W``, fingertips by their finger's initial, other joints ``o``.
    """
    joints = np.asarray(joints, dtype=float)
    if joints.shape != (NUM_JOINTS, 3):
        raise ReproError(f"expected (21, 3) joints, got {joints.shape}")
    axes = {"yz": (1, 2), "xy": (0, 1), "xz": (0, 2)}
    if plane not in axes:
        raise ReproError(f"unknown projection plane {plane!r}")
    if width < 4 or height < 4:
        raise ReproError("canvas must be at least 4x4")
    a, b = axes[plane]
    us = joints[:, a]
    vs = joints[:, b]
    u_span = max(us.max() - us.min(), 1e-3)
    v_span = max(vs.max() - vs.min(), 1e-3)

    marks: Dict[int, str] = {WRIST: "W"}
    for finger, chain in FINGER_CHAINS.items():
        for j in chain[:-1]:
            marks[j] = "o"
        marks[chain[-1]] = finger[0].upper()

    canvas = [[" "] * width for _ in range(height)]
    for j in range(NUM_JOINTS):
        col = int((us[j] - us.min()) / u_span * (width - 1))
        row = height - 1 - int((vs[j] - vs.min()) / v_span * (height - 1))
        canvas[row][col] = marks[j]
    return "\n".join("".join(row) for row in canvas)


def ascii_range_profile(
    profile: np.ndarray, range_axis_m: np.ndarray, height: int = 8
) -> str:
    """Bar-chart rendering of a range power profile (paper Fig. 3).

    Each column is one range bin; bar height is proportional to power.
    The axis line labels every fourth bin in centimetres.
    """
    profile = np.asarray(profile, dtype=float)
    range_axis_m = np.asarray(range_axis_m, dtype=float)
    if profile.shape != range_axis_m.shape or profile.ndim != 1:
        raise ReproError("profile and range axis must be matching 1-D")
    if height < 2:
        raise ReproError("height must be >= 2")
    top = profile.max()
    if top <= 0:
        levels = np.zeros(len(profile), dtype=int)
    else:
        levels = np.round(profile / top * height).astype(int)
    rows = []
    for level in range(height, 0, -1):
        rows.append(
            "".join("#" if l >= level else " " for l in levels)
        )
    rows.append("-" * len(profile))
    labels = [" "] * len(profile)
    for i in range(0, len(profile), 4):
        text = f"{range_axis_m[i] * 100:.0f}"
        for k, ch in enumerate(text):
            if i + k < len(labels):
                labels[i + k] = ch
    rows.append("".join(labels) + " (cm)")
    return "\n".join(rows)
