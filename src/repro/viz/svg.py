"""SVG export of skeleton and mesh projections.

Produces small standalone SVG documents (no plotting dependency) showing
the front-view (y-z) projection by default; handy for embedding pipeline
outputs in reports or READMEs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ReproError
from repro.hand.joints import NUM_JOINTS, PHALANGES

_FINGER_COLORS = (
    "#888888",  # wrist-mcp connections
    "#c0392b",  # thumb
    "#2980b9",  # index
    "#27ae60",  # middle
    "#8e44ad",  # ring
    "#d35400",  # pinky
)


def _project(
    points: np.ndarray, plane: str, size: int, margin: float
) -> np.ndarray:
    axes = {"yz": (1, 2), "xy": (0, 1), "xz": (0, 2)}
    if plane not in axes:
        raise ReproError(f"unknown projection plane {plane!r}")
    a, b = axes[plane]
    us = points[:, a]
    vs = points[:, b]
    u_span = max(us.max() - us.min(), 1e-6)
    v_span = max(vs.max() - vs.min(), 1e-6)
    span = max(u_span, v_span)
    inner = size - 2 * margin
    x = margin + (us - us.min()) / span * inner
    y = size - margin - (vs - vs.min()) / span * inner
    return np.stack([x, y], axis=1)


def _svg_document(size: int, body: List[str]) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">\n'
        + "\n".join(body)
        + "\n</svg>\n"
    )


def skeleton_svg(
    joints: np.ndarray,
    plane: str = "yz",
    size: int = 320,
    path: Optional[str] = None,
) -> str:
    """Render a 21-joint skeleton as an SVG string (and optionally save).

    Bones are coloured per finger; joints are dots, the wrist a larger
    one.
    """
    joints = np.asarray(joints, dtype=float)
    if joints.shape != (NUM_JOINTS, 3):
        raise ReproError(f"expected (21, 3) joints, got {joints.shape}")
    pts = _project(joints, plane, size, margin=20.0)
    body = ['<rect width="100%" height="100%" fill="white"/>']
    for parent, child in PHALANGES:
        finger = (child - 1) // 4 + 1
        color = _FINGER_COLORS[finger if parent != 0 else 0]
        x1, y1 = pts[parent]
        x2, y2 = pts[child]
        body.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{color}" stroke-width="3"/>'
        )
    for j, (x, y) in enumerate(pts):
        radius = 6 if j == 0 else 3
        body.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius}" '
            'fill="#2c3e50"/>'
        )
    document = _svg_document(size, body)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(document)
    return document


def mesh_svg(
    vertices: np.ndarray,
    faces: np.ndarray,
    plane: str = "yz",
    size: int = 320,
    path: Optional[str] = None,
) -> str:
    """Render a mesh's projected wireframe as an SVG string.

    Faces are painter-sorted by depth and filled with a simple
    depth-based shade, giving a readable 3-D impression without a real
    renderer.
    """
    vertices = np.asarray(vertices, dtype=float)
    faces = np.asarray(faces, dtype=int)
    if vertices.ndim != 2 or vertices.shape[1] != 3:
        raise ReproError("vertices must have shape (V, 3)")
    if faces.ndim != 2 or faces.shape[1] != 3:
        raise ReproError("faces must have shape (F, 3)")
    depth_axis = {"yz": 0, "xy": 2, "xz": 1}[plane]
    pts = _project(vertices, plane, size, margin=20.0)
    depths = vertices[faces].mean(axis=1)[:, depth_axis]
    order = np.argsort(depths)[::-1]  # far first (painter's algorithm)
    d_lo, d_hi = depths.min(), depths.max()
    span = max(d_hi - d_lo, 1e-6)
    body = ['<rect width="100%" height="100%" fill="white"/>']
    for f in order:
        tri = pts[faces[f]]
        shade = int(150 + 90 * (d_hi - depths[f]) / span)
        shade = min(shade, 240)
        color = f"rgb({shade},{shade - 30},{shade - 60})"
        points = " ".join(f"{x:.1f},{y:.1f}" for x, y in tri)
        body.append(
            f'<polygon points="{points}" fill="{color}" '
            'stroke="#555555" stroke-width="0.4"/>'
        )
    document = _svg_document(size, body)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(document)
    return document
