"""Wavefront OBJ export and mesh inspection utilities."""

from __future__ import annotations

import os
from typing import Dict, Union

import numpy as np

from repro.errors import ReproError
from repro.mano.model import MeshResult


def save_obj(mesh: MeshResult, path: Union[str, os.PathLike]) -> None:
    """Write a mesh as a Wavefront OBJ file (1-based face indices).

    The output opens in any standard 3-D viewer (Blender, MeshLab, ...).
    """
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    vertices = np.asarray(mesh.vertices, dtype=float)
    faces = np.asarray(mesh.faces, dtype=int)
    if faces.size and faces.max() >= len(vertices):
        raise ReproError("face indices exceed vertex count")
    lines = ["# mmHand reproduction mesh export"]
    for x, y, z in vertices:
        lines.append(f"v {x:.6f} {y:.6f} {z:.6f}")
    for a, b, c in faces:
        lines.append(f"f {a + 1} {b + 1} {c + 1}")
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


def face_normals(vertices: np.ndarray, faces: np.ndarray) -> np.ndarray:
    """Unit normals of every triangle, shape (F, 3)."""
    vertices = np.asarray(vertices, dtype=float)
    faces = np.asarray(faces, dtype=int)
    a = vertices[faces[:, 0]]
    b = vertices[faces[:, 1]]
    c = vertices[faces[:, 2]]
    normals = np.cross(b - a, c - a)
    norms = np.linalg.norm(normals, axis=1, keepdims=True)
    return normals / np.maximum(norms, 1e-12)


def surface_area(vertices: np.ndarray, faces: np.ndarray) -> float:
    """Total surface area of the triangle mesh in square metres."""
    vertices = np.asarray(vertices, dtype=float)
    faces = np.asarray(faces, dtype=int)
    a = vertices[faces[:, 0]]
    b = vertices[faces[:, 1]]
    c = vertices[faces[:, 2]]
    return float(
        0.5 * np.linalg.norm(np.cross(b - a, c - a), axis=1).sum()
    )


def mesh_summary(mesh: MeshResult) -> Dict[str, float]:
    """Key statistics of a mesh: counts, bounding box, surface area.

    Useful both for quick sanity checks in examples and for regression
    tests over the template generator.
    """
    vertices = np.asarray(mesh.vertices, dtype=float)
    if len(vertices) == 0:
        raise ReproError("mesh has no vertices")
    bbox = vertices.max(axis=0) - vertices.min(axis=0)
    return {
        "num_vertices": float(len(vertices)),
        "num_faces": float(len(mesh.faces)),
        "bbox_x_m": float(bbox[0]),
        "bbox_y_m": float(bbox[1]),
        "bbox_z_m": float(bbox[2]),
        "surface_area_m2": surface_area(vertices, mesh.faces),
    }
