"""Command-line interface for the mmHand reproduction.

Subcommands cover the common workflows end to end:

* ``mmhand generate-data`` -- simulate a capture campaign to an ``.npz``;
* ``mmhand train`` -- train the joint regressor on a dataset ``.npz``
  or on a sharded campaign directory (``--train-workers W`` runs
  data-parallel training, bit-identical to the sequential reference);
* ``mmhand campaign generate|train|bench`` -- the campaign-scale data
  engine: sharded parallel generation with per-shard seeding and an
  atomic manifest, streaming prefetch training from those shards, and
  the benchmark behind ``BENCH_training.json``;
* ``mmhand evaluate`` -- MPJPE / PCK / AUC of a trained model on a dataset;
* ``mmhand demo`` -- run the full pipeline on a fresh simulated gesture
  sequence and print ASCII skeletons + recognised gestures;
* ``mmhand serve`` -- run the multi-session inference service over a
  simulated multi-client feed and print a throughput/latency report
  (``--workers N`` serves through the multi-process gateway instead);
* ``mmhand gateway-bench`` -- sweep the gateway across worker counts
  with the open-loop load generator and write ``BENCH_serving.json``;
* ``mmhand bench`` -- benchmark the DSP hot path against its reference
  implementations and write a ``BENCH_pipeline.json`` summary;
* ``mmhand export-mesh`` -- reconstruct a mesh from a gesture and write
  OBJ/SVG files;
* ``mmhand plan export|verify`` -- write / check a portable
  compiled-plan artifact (folded weights, activation ranges, static
  memory plans) that servers and gateway workers load instead of
  retracing the network;
* ``mmhand trace <cmd> ...`` -- run any other subcommand under the span
  tracer, print a span summary, and export a Chrome trace;
* ``mmhand profile <cmd> ...`` -- run any other subcommand under the
  sampling profiler, print the hot frames, and write a folded-stack
  profile;
* ``mmhand gateway-trace`` -- smoke-run the gateway with distributed
  tracing on and export ONE merged Chrome trace whose worker-side
  spans are parented, across the process boundary, to their
  dispatcher-side submit spans;
* ``mmhand bench-compare FRESH COMMITTED`` -- regression guard that
  compares a fresh benchmark JSON against the committed baseline on
  machine-portable ratio/invariant checks.

``serve``, ``train`` and ``bench`` additionally accept ``--trace-out``
(Chrome trace-event JSON of the run; ``serve --workers N`` writes the
pool-merged trace), ``--metrics-json`` (metrics registry snapshot) and
``--profile-out`` (folded-stack sampling profile; the gateway path
merges every worker's samples under per-process lanes). Every command
is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _add_obs_flags(p) -> None:
    """Shared observability flags for the long-running subcommands."""
    p.add_argument(
        "--trace-out", dest="trace_out", default=None, metavar="PATH",
        help="write a Chrome trace-event JSON of this run "
             "(open in chrome://tracing or ui.perfetto.dev)",
    )
    p.add_argument(
        "--metrics-json", dest="metrics_json", default=None,
        metavar="PATH",
        help="write a metrics-registry snapshot JSON of this run",
    )
    p.add_argument(
        "--profile-out", dest="profile_out", default=None,
        metavar="PATH",
        help="sample this run's call stacks and write a folded-stack "
             "profile (flamegraph.pl / speedscope input); gateway runs "
             "merge worker-process samples into per-lane stacks",
    )
    p.add_argument(
        "--profile-hz", dest="profile_hz", type=float, default=None,
        metavar="HZ",
        help="sampling rate for --profile-out (default 97 Hz)",
    )


def _export_observability(args, registry=None) -> None:
    """Honour ``--trace-out`` / ``--metrics-json`` at command exit."""
    import json

    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    if getattr(args, "trace_out", None):
        path = obs_trace.export_chrome(args.trace_out)
        print(f"trace -> {path}")
    if getattr(args, "metrics_json", None):
        target = (
            registry if registry is not None
            else obs_metrics.get_registry()
        )
        with open(args.metrics_json, "w") as fh:
            json.dump(target.snapshot(), fh, indent=2, default=float)
        print(f"metrics -> {args.metrics_json}")


def _write_profile(path, profile, overhead=None) -> None:
    """Write a profile dict as folded stacks and print a summary."""
    from repro.obs.profiler import folded_from_dict

    folded = folded_from_dict(profile)
    with open(path, "w") as fh:
        fh.write(folded + ("\n" if folded else ""))
    line = f"profile -> {path} ({profile.get('samples', 0)} samples"
    if overhead is not None:
        line += f", overhead {overhead:.2%}"
    print(line + ")")


def _add_generate(subparsers) -> None:
    p = subparsers.add_parser(
        "generate-data", help="simulate a capture campaign to an .npz"
    )
    p.add_argument("output", help="output dataset path (.npz)")
    p.add_argument("--users", type=int, default=2)
    p.add_argument("--segments-per-user", type=int, default=40)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--environment", default=None,
                   help="fix one environment instead of rotating")
    p.add_argument("--glove", default=None, choices=["silk", "cotton"])
    p.add_argument("--distance", type=float, default=None,
                   help="fixed hand distance in metres")


def _cmd_generate(args) -> int:
    from repro.config import CampaignConfig
    from repro.data.collection import CampaignGenerator, CaptureOptions
    from repro.hand.subjects import make_subjects

    generator = CampaignGenerator(
        campaign=CampaignConfig(
            num_users=args.users,
            segments_per_user=args.segments_per_user,
        )
    )
    options = CaptureOptions(
        environment=args.environment or "classroom",
        glove=args.glove,
        distance_m=args.distance,
    )
    dataset = generator.generate(
        subjects=make_subjects(args.users),
        options=options,
        seed=args.seed,
        rotate_environments=args.environment is None,
    )
    dataset.save(args.output)
    print(f"wrote {len(dataset)} segments to {args.output}")
    return 0


def _add_worker_flags(p) -> None:
    """Shared data/compute parallelism flags for training commands."""
    p.add_argument(
        "--data-workers", dest="data_workers", type=int, default=1,
        help="shard prefetch depth when training from a campaign "
             "directory: how many shards the background loader keeps "
             "buffered ahead of the consumer (default 1 = double "
             "buffering)",
    )
    p.add_argument(
        "--train-workers", dest="train_workers", type=int, default=1,
        help="data-parallel world size W: every optimizer step "
             "averages the gradients of W micro-batches; W > 1 forks "
             "one worker process per rank (shared-memory allreduce, "
             "bit-identical to W sequential micro-batches)",
    )


def _add_train(subparsers) -> None:
    p = subparsers.add_parser(
        "train", help="train the joint regressor on a dataset .npz or "
                      "a sharded campaign directory"
    )
    p.add_argument("dataset", help="dataset .npz from generate-data, "
                                   "or a campaign directory from "
                                   "'campaign generate'")
    p.add_argument("weights", help="output weights path (.npz)")
    p.add_argument("--epochs", type=int, default=15)
    p.add_argument("--batch-size", type=int, default=16)
    p.add_argument("--learning-rate", type=float, default=1e-3)
    p.add_argument("--gamma-kinematic", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--holdout-user", type=int, default=None,
                   help="exclude one user from training for evaluation "
                        "(.npz datasets only)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="write an atomic crash-safe checkpoint every "
                        "--checkpoint-every epochs")
    p.add_argument("--checkpoint-every", type=int, default=1)
    p.add_argument("--resume-from", default=None, metavar="PATH",
                   help="resume from a checkpoint (or 'auto' to pick "
                        "the newest one in --checkpoint-dir)")
    _add_worker_flags(p)
    _add_obs_flags(p)


def _resolve_resume(args) -> "tuple":
    """Handle ``--resume-from auto``; returns (ok, resume_path)."""
    from repro.resilience import latest_checkpoint

    resume_from = args.resume_from
    if resume_from == "auto":
        if args.checkpoint_dir is None:
            print(
                "--resume-from auto requires --checkpoint-dir",
                file=sys.stderr,
            )
            return False, None
        resume_from = latest_checkpoint(args.checkpoint_dir)
        if resume_from is None:
            print(f"no checkpoint found in {args.checkpoint_dir}; "
                  "starting fresh")
        else:
            print(f"resuming from {resume_from}")
    return True, resume_from


def _emit_train_report(
    result, segment_frames: int, train_workers: int, data_workers: int,
    prefetch_wait_s: float,
) -> None:
    """One structured (logfmt) training report line, mirroring the
    serve report: throughput, per-epoch wall clock, prefetch stall."""
    from repro.obs.logging import get_logger

    stats = result.epoch_stats
    epoch_s = (
        float(np.mean([s["elapsed_s"] for s in stats])) if stats else 0.0
    )
    segments_per_s = (
        float(np.mean([s["segments_per_s"] for s in stats]))
        if stats else 0.0
    )
    get_logger("train").info(
        "train_report",
        epochs=result.epochs,
        final_loss=result.final_loss if result.total_loss else 0.0,
        epoch_s=epoch_s,
        segments_per_s=segments_per_s,
        frames_per_s=segments_per_s * segment_frames,
        prefetch_wait_s=prefetch_wait_s,
        train_workers=train_workers,
        data_workers=data_workers,
    )


def _train_campaign(args) -> int:
    """Train from a sharded campaign directory (data-parallel path).

    Shared by ``mmhand train <campaign-dir>`` and ``mmhand campaign
    train``; optional attributes missing from one parser fall back to
    defaults.
    """
    from repro.campaign import DataParallelConfig, ShardedDataset
    from repro.config import ModelConfig, TrainConfig
    from repro.core.regressor import HandJointRegressor
    from repro.core.training import Trainer
    from repro.nn.serialization import save_state
    from repro.obs import metrics as obs_metrics
    from repro.obs.logging import configure

    configure(stream=sys.stdout)
    ok, resume_from = _resolve_resume(args)
    if not ok:
        return 1
    if getattr(args, "holdout_user", None) is not None:
        print("--holdout-user applies to .npz datasets only",
              file=sys.stderr)
        return 1
    data_workers = max(1, args.data_workers)
    train_workers = max(1, args.train_workers)
    dataset = ShardedDataset(args.dataset, prefetch_depth=data_workers)
    dsp = dataset.dsp_config()
    if getattr(args, "small", False):
        model = ModelConfig(
            base_channels=4, hourglass_depth=1, num_blocks=1,
            feature_dim=16, lstm_hidden=16,
        )
    else:
        model = ModelConfig()
    regressor = HandJointRegressor(dsp=dsp, model=model, seed=args.seed)
    trainer = Trainer(
        regressor,
        TrainConfig(
            epochs=args.epochs,
            batch_size=args.batch_size,
            learning_rate=args.learning_rate,
            gamma_kinematic=getattr(args, "gamma_kinematic", 0.1),
            seed=args.seed,
        ),
    )
    wait_before = obs_metrics.histogram("campaign.prefetch.wait_s").sum
    result = trainer.fit_data_parallel(
        dataset,
        DataParallelConfig(
            world_size=train_workers,
            processes=train_workers if train_workers > 1 else 1,
        ),
        verbose=True,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume_from=resume_from,
    )
    prefetch_wait_s = (
        obs_metrics.histogram("campaign.prefetch.wait_s").sum
        - wait_before
    )
    save_state(regressor, args.weights)
    _emit_train_report(
        result, dsp.segment_frames, train_workers, data_workers,
        prefetch_wait_s,
    )
    print(
        f"trained {result.epochs} epochs "
        f"(W={train_workers}) in {result.elapsed_s:.0f}s, "
        f"final loss {result.final_loss:.4f}; weights -> {args.weights}"
    )
    _export_observability(args)
    return 0


def _cmd_train(args) -> int:
    import os

    from repro.config import TrainConfig
    from repro.core.regressor import HandJointRegressor
    from repro.core.training import Trainer
    from repro.data.dataset import HandPoseDataset
    from repro.nn.serialization import save_state
    from repro.obs.logging import configure

    if os.path.isdir(args.dataset):
        return _train_campaign(args)

    configure(stream=sys.stdout)
    dataset = HandPoseDataset.load(args.dataset)
    if args.holdout_user is not None:
        keep = np.nonzero(dataset.user_ids != args.holdout_user)[0]
        dataset = dataset.subset(keep)
    ok, resume_from = _resolve_resume(args)
    if not ok:
        return 1
    regressor = HandJointRegressor(seed=args.seed)
    trainer = Trainer(
        regressor,
        TrainConfig(
            epochs=args.epochs,
            batch_size=args.batch_size,
            learning_rate=args.learning_rate,
            gamma_kinematic=args.gamma_kinematic,
            seed=args.seed,
        ),
    )
    train_workers = max(1, args.train_workers)
    if train_workers > 1:
        from repro.campaign import DataParallelConfig

        result = trainer.fit_data_parallel(
            dataset,
            DataParallelConfig(
                world_size=train_workers, processes=train_workers
            ),
            verbose=True,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume_from=resume_from,
        )
    else:
        result = trainer.fit(
            dataset, verbose=True,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume_from=resume_from,
        )
    save_state(regressor, args.weights)
    segment_frames = int(dataset.segments.shape[1])
    _emit_train_report(
        result, segment_frames, train_workers, args.data_workers, 0.0
    )
    print(
        f"trained {result.epochs} epochs in {result.elapsed_s:.0f}s, "
        f"final loss {result.final_loss:.4f}; weights -> {args.weights}"
    )
    _export_observability(args)
    return 0


def _add_evaluate(subparsers) -> None:
    p = subparsers.add_parser(
        "evaluate", help="evaluate trained weights on a dataset"
    )
    p.add_argument("dataset")
    p.add_argument("weights")
    p.add_argument("--user", type=int, default=None,
                   help="restrict to one user's segments")


def _cmd_evaluate(args) -> int:
    from repro.core.regressor import HandJointRegressor
    from repro.data.dataset import HandPoseDataset
    from repro.eval.metrics import group_metrics
    from repro.nn.serialization import load_state

    dataset = HandPoseDataset.load(args.dataset)
    if args.user is not None:
        dataset = dataset.for_user(args.user)
        if len(dataset) == 0:
            print(f"no segments for user {args.user}", file=sys.stderr)
            return 1
    regressor = HandJointRegressor()
    load_state(regressor, args.weights)
    regressor.eval()
    predictions = regressor.predict(dataset.segments)
    for name, metrics in group_metrics(predictions, dataset.labels).items():
        print(
            f"{name:8s} MPJPE {metrics.mpjpe_mm:6.1f} mm | "
            f"3D-PCK@40mm {metrics.pck_percent:5.1f} % | "
            f"AUC {metrics.auc:.3f}"
        )
    return 0


def _add_demo(subparsers) -> None:
    p = subparsers.add_parser(
        "demo",
        help="full pipeline on a simulated gesture sequence "
             "(requires trained weights)",
    )
    p.add_argument("weights")
    p.add_argument("--gestures", nargs="+",
                   default=["fist", "point", "open_palm"])
    p.add_argument("--seed", type=int, default=0)


def _cmd_demo(args) -> int:
    from repro.apps.ui_control import GestureCommandMapper
    from repro.config import SystemConfig
    from repro.core.pipeline import MmHand
    from repro.core.regressor import HandJointRegressor
    from repro.hand.animation import GestureSequence, Keyframe
    from repro.hand.subjects import make_subjects
    from repro.nn.serialization import load_state
    from repro.radar.radar import RadarSimulator
    from repro.radar.scatterers import hand_scatterers
    from repro.radar.scene import Scene
    from repro.viz.ascii_render import ascii_skeleton

    config = SystemConfig()
    regressor = HandJointRegressor()
    load_state(regressor, args.weights)
    regressor.eval()
    system = MmHand(config, regressor)

    keyframes = [
        Keyframe(0.8 * i, name) for i, name in enumerate(args.gestures)
    ]
    sequence = GestureSequence(
        keyframes, base_position=np.array([0.3, 0.0, 0.0]),
        seed=args.seed,
    )
    st = config.dsp.segment_frames
    frames_per_gesture = st
    hold = 0.8 / frames_per_gesture
    poses = sequence.sample(hold, len(args.gestures) * frames_per_gesture)
    shape = make_subjects(1)[0].hand_shape()
    sim = RadarSimulator(config.radar, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    raw = []
    for i, pose in enumerate(poses):
        prev = poses[i - 1] if i else None
        raw.append(
            sim.frame(
                Scene(
                    hand=hand_scatterers(
                        shape, pose, prev_pose=prev,
                        frame_period_s=hold, rng=rng,
                    )
                )
            )
        )
    segments = system.preprocess(np.stack(raw))
    skeletons, _ = system.estimate_skeletons(segments)

    mapper = GestureCommandMapper(hold_frames=1)
    for i, skeleton in enumerate(skeletons):
        print(f"\n--- segment {i} (true gesture: {args.gestures[i]}) ---")
        print(ascii_skeleton(skeleton))
        label, confidence = mapper.classifier.classify(skeleton)
        print(f"recognised: {label} (confidence {confidence:.2f})")
    return 0


def _add_serve(subparsers) -> None:
    p = subparsers.add_parser(
        "serve",
        help="run the multi-session inference service over a simulated "
             "multi-client frame feed and report throughput/latency",
    )
    p.add_argument("--weights", default=None,
                   help="trained weights .npz (random weights if omitted)")
    p.add_argument("--sessions", type=int, default=4,
                   help="number of concurrent simulated clients")
    p.add_argument("--frames", type=int, default=16,
                   help="raw frames fed per client")
    p.add_argument("--batch-size", type=int, default=8,
                   help="micro-batch size limit")
    p.add_argument("--queue-capacity", type=int, default=64)
    p.add_argument("--policy", default="drop-oldest",
                   choices=["block", "drop-oldest", "reject"],
                   help="backpressure policy when the queue fills")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the content-hash result cache")
    p.add_argument("--hop", type=int, default=1,
                   help="frames between emissions per session")
    p.add_argument("--shard-threads", type=int, default=0,
                   help="split each compiled micro-batch across N worker "
                        "threads (0: single-threaded)")
    p.add_argument("--precision", default="float32",
                   choices=["float32", "float16", "int8"],
                   help="compiled-plan execution mode (int8 needs a "
                        "calibrated plan artifact via --plan)")
    p.add_argument("--plan", dest="plan_path", default=None,
                   metavar="PREFIX",
                   help="load a pre-compiled plan artifact "
                        "(mmhand plan export) instead of tracing the "
                        "network at startup")
    p.add_argument("--workers", type=int, default=0,
                   help="serve through the multi-process gateway with N "
                        "worker processes and zero-copy shared-memory "
                        "ingest (0: single in-process server)")
    net = p.add_argument_group(
        "network", "real TCP serving instead of the simulated feed"
    )
    net.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="serve the netfront wire protocol on this address "
             "(port 0 picks an ephemeral port); runs until "
             "SIGTERM/SIGINT, then drains gracefully",
    )
    net.add_argument(
        "--auth-token-file", default=None, metavar="PATH",
        help="file holding the shared auth token clients must present "
             "in HELLO (default: auth disabled)",
    )
    net.add_argument(
        "--max-connections", type=int, default=64,
        help="admission gate: concurrent TCP connections (default: 64)",
    )
    net.add_argument(
        "--max-sessions", type=int, default=256,
        help="admission gate: concurrent sessions (default: 256)",
    )
    net.add_argument(
        "--idle-timeout", type=float, default=30.0, metavar="S",
        help="reap connections silent in both directions for this "
             "long (default: 30 s)",
    )
    p.add_argument("--report-every", type=int, default=0,
                   help="print a live report every N ticks (0: final only)")
    p.add_argument("--json", dest="json_path", default=None,
                   help="write the final stats snapshot to this path")
    p.add_argument("--seed", type=int, default=0)
    chaos = p.add_argument_group(
        "chaos", "deterministic fault injection for resilience drills"
    )
    chaos.add_argument("--chaos", action="store_true",
                       help="enable the fault injector on the feed and "
                            "forward paths")
    chaos.add_argument("--chaos-frame-rate", type=float, default=0.1,
                       help="fraction of fed frames corrupted "
                            "(NaN/Inf/wrong shape/dropped)")
    chaos.add_argument("--chaos-forward-rate", type=float, default=0.05,
                       help="fraction of forward passes that raise an "
                            "injected fault")
    chaos.add_argument("--chaos-compile-fail", action="store_true",
                       help="force every compiled-plan attempt to fail "
                            "(trips the breaker to the eager path)")
    chaos.add_argument("--chaos-seed", type=int, default=0,
                       help="fault injector RNG seed")
    chaos.add_argument("--dead-letter-log", default=None, metavar="PATH",
                       help="write quarantined requests as JSONL")
    _add_obs_flags(p)


def _simulated_client_frames(
    radar, sessions: int, frames: int, seed: int
) -> "np.ndarray":
    """Raw IF frames for ``sessions`` clients, each playing a gesture
    sequence with its own subject and random stream.

    Returns an array of shape ``(sessions, frames, antennas, loops,
    samples)``.
    """
    from repro.hand.animation import GestureSequence, Keyframe
    from repro.hand.gestures import list_gestures
    from repro.hand.subjects import make_subjects
    from repro.radar.radar import RadarSimulator
    from repro.radar.scatterers import hand_scatterers
    from repro.radar.scene import Scene

    gestures = list_gestures()
    subjects = make_subjects(sessions)
    hold = 0.05
    feeds = []
    for client in range(sessions):
        rng = np.random.default_rng(seed + 1000 * client)
        names = [
            gestures[(client + i) % len(gestures)] for i in range(2)
        ]
        sequence = GestureSequence(
            [Keyframe(0.5 * i, name) for i, name in enumerate(names)],
            base_position=np.array([0.3, 0.0, 0.0]),
            seed=seed + client,
        )
        poses = sequence.sample(hold, frames)
        shape = subjects[client].hand_shape()
        sim = RadarSimulator(radar, seed=seed + client)
        raw = []
        for i, pose in enumerate(poses):
            prev = poses[i - 1] if i else None
            raw.append(
                sim.frame(
                    Scene(
                        hand=hand_scatterers(
                            shape, pose, prev_pose=prev,
                            frame_period_s=hold, rng=rng,
                        )
                    )
                )
            )
        feeds.append(np.stack(raw))
    return np.stack(feeds)


def _print_serve_report(
    stats, elapsed_s: float, tick: int, event: str = "report"
) -> None:
    """Emit one structured (logfmt) serving report line."""
    from repro.obs.logging import get_logger

    counters = stats["counters"]
    latency = stats["histograms"].get("latency_s", {})
    batch = stats["histograms"].get("batch_size", {})
    poses = counters.get("poses", 0)
    fields = {
        "tick": tick,
        "poses": poses,
        "poses_per_s": poses / elapsed_s if elapsed_s > 0 else 0.0,
        "batch_mean": batch.get("mean", 0.0),
        "latency_p50_ms": latency.get("p50", 0.0) * 1e3,
        "latency_p95_ms": latency.get("p95", 0.0) * 1e3,
        "latency_p99_ms": latency.get("p99", 0.0) * 1e3,
        "queue_depth": stats["queue"]["depth"],
        "dropped": stats["queue"]["dropped"],
        "rejected": stats["queue"]["rejected"],
    }
    if "cache" in stats:
        fields["cache_hit_rate"] = stats["cache"]["hit_rate"]
    get_logger("serve").info(event, **fields)


def _cmd_serve(args) -> int:
    import json
    import time

    from repro.config import DspConfig, ModelConfig, RadarConfig
    from repro.core.regressor import HandJointRegressor
    from repro.dsp.radar_cube import CubeBuilder
    from repro.errors import QueueFullError
    from repro.obs.logging import configure, get_logger
    from repro.serving import InferenceServer, ServingConfig

    # Serving reports are logfmt lines on stdout, next to the plain
    # human-readable framing prints.
    configure(stream=sys.stdout)

    if args.sessions < 1:
        print("--sessions must be >= 1", file=sys.stderr)
        return 1
    if args.frames < 1:
        print("--frames must be >= 1", file=sys.stderr)
        return 1
    if args.workers < 0:
        print("--workers must be >= 0", file=sys.stderr)
        return 1
    if args.listen is not None:
        return _cmd_serve_netfront(args)
    if args.workers > 0:
        return _cmd_serve_gateway(args)

    radar = RadarConfig()
    dsp = DspConfig()
    regressor = HandJointRegressor(dsp, ModelConfig())
    if args.weights is not None:
        from repro.nn.serialization import load_state

        load_state(regressor, args.weights)
    regressor.eval()
    if args.plan_path is not None:
        from repro.errors import SerializationError
        from repro.nn.serialization import (
            attach_plan,
            load_plan,
            plan_matches_config,
        )

        try:
            compiled, plan_meta = load_plan(
                args.plan_path, with_meta=True
            )
        except SerializationError as error:
            print(f"plan artifact: {error}", file=sys.stderr)
            return 1
        if plan_meta.get("config", {}).get("dsp") and not (
            plan_matches_config(plan_meta, dsp, regressor.model_config)
        ):
            print(
                f"plan artifact {args.plan_path} was exported for a "
                "different dsp/model config",
                file=sys.stderr,
            )
            return 1
        attach_plan(regressor, compiled)
        get_logger("serve").info(
            "plan_artifact_loaded",
            path=args.plan_path,
            ops=len(compiled.plan.ops),
            calibrated=bool(compiled.act_ranges),
        )

    if args.shard_threads < 0:
        print("--shard-threads must be >= 0", file=sys.stderr)
        return 1
    serving = ServingConfig(
        max_batch_size=args.batch_size,
        queue_capacity=args.queue_capacity,
        policy=args.policy,
        enable_cache=not args.no_cache,
        hop_frames=args.hop,
        shard_threads=args.shard_threads,
        precision=args.precision,
    )
    injector = None
    if args.chaos:
        from repro.resilience import FaultInjector

        injector = FaultInjector(
            frame_corrupt_rate=args.chaos_frame_rate,
            forward_fail_rate=args.chaos_forward_rate,
            compile_fail=args.chaos_compile_fail,
            seed=args.chaos_seed,
        )
    server = InferenceServer(
        CubeBuilder(radar, dsp), regressor, serving,
        fault_injector=injector,
    )

    print(
        f"simulating {args.sessions} clients x {args.frames} frames "
        f"(policy={args.policy}, batch<= {args.batch_size}, "
        f"cache={'off' if args.no_cache else 'on'}"
        f"{', chaos=on' if injector is not None else ''})"
    )
    feeds = _simulated_client_frames(
        radar, args.sessions, args.frames, args.seed
    )
    session_ids = [server.open_session() for _ in range(args.sessions)]

    start = time.perf_counter()
    for tick in range(args.frames):
        for client, session_id in enumerate(session_ids):
            frame = feeds[client, tick]
            if injector is not None:
                frame, _ = injector.corrupt_frame(frame)
                if frame is None:  # injected frame drop
                    continue
            try:
                server.submit(session_id, frame)
            except QueueFullError:
                # Under the reject policy an overloaded queue refuses
                # the window; the server counts it, the feed moves on.
                pass
        server.step()
        if args.report_every and (tick + 1) % args.report_every == 0:
            _print_serve_report(
                server.stats(), time.perf_counter() - start, tick + 1
            )
    server.drain()
    elapsed = time.perf_counter() - start
    for session_id in session_ids:
        server.close_session(session_id)

    stats = server.stats()
    print("--- final report ---")
    _print_serve_report(stats, elapsed, args.frames, event="final_report")
    logger = get_logger("serve")
    counters = stats["counters"]
    logger.info(
        "served",
        poses=counters.get("poses", 0),
        frames_in=counters.get("frames_in", 0),
        elapsed_s=elapsed,
        frames_per_s=counters.get("frames_in", 0) / elapsed,
        batches=counters.get("batches", 0),
    )
    plan = stats["plan_cache"]
    logger.info(
        "plan_cache",
        hits=plan["hits"],
        misses=plan["misses"],
        entries=plan["entries"],
    )
    logger.info(
        "resilience",
        health=stats["health"],
        breaker=stats["breaker"]["state"],
        quarantined=counters.get("frames_quarantined", 0)
        + counters.get("quarantined", 0),
        dead_letters=stats["dead_letters"]["total"],
        compiled_fallbacks=counters.get("compiled_fallbacks", 0),
    )
    if injector is not None:
        logger.info("chaos", **injector.stats())
    if args.dead_letter_log:
        server.dead_letters.to_jsonl(args.dead_letter_log)
        print(
            f"dead letters ({len(server.dead_letters)}) -> "
            f"{args.dead_letter_log}"
        )
    if args.json_path:
        stats["elapsed_s"] = elapsed
        with open(args.json_path, "w") as fh:
            json.dump(stats, fh, indent=2, default=float)
        print(f"stats -> {args.json_path}")
    _export_observability(args, registry=server.metrics)
    return 0


def _cmd_serve_netfront(args) -> int:
    """``mmhand serve --listen HOST:PORT``: real TCP serving.

    Stands up the multi-process gateway (``--workers``, minimum 1)
    behind the :mod:`repro.netfront` asyncio server and runs until
    SIGTERM/SIGINT triggers the graceful drain: stop accepting, flush
    in-flight frames, send every client a goodbye frame with the final
    accounting, exit 0 only if every submitted frame was answered or
    dead-lettered.
    """
    import asyncio
    import json

    from repro.config import DspConfig, ModelConfig, RadarConfig
    from repro.gateway import Gateway, GatewayConfig
    from repro.netfront import NetFrontConfig, serve_until_signal
    from repro.obs.logging import configure, get_logger
    from repro.serving import ServingConfig

    configure(stream=sys.stdout)
    host, _, port_text = args.listen.rpartition(":")
    if not host or not port_text:
        print(
            f"--listen wants HOST:PORT, got {args.listen!r}",
            file=sys.stderr,
        )
        return 1
    try:
        port = int(port_text)
    except ValueError:
        print(f"--listen port {port_text!r} is not an integer",
              file=sys.stderr)
        return 1
    auth_token = None
    if args.auth_token_file is not None:
        try:
            with open(args.auth_token_file) as fh:
                auth_token = fh.read().strip()
        except OSError as error:
            print(f"--auth-token-file: {error}", file=sys.stderr)
            return 1
        if not auth_token:
            print(
                f"--auth-token-file {args.auth_token_file} is empty",
                file=sys.stderr,
            )
            return 1

    config = GatewayConfig(
        workers=max(1, args.workers),
        serving=ServingConfig(
            max_batch_size=args.batch_size,
            queue_capacity=args.queue_capacity,
            policy=args.policy,
            enable_cache=not args.no_cache,
            hop_frames=args.hop,
            shard_threads=args.shard_threads,
            precision=args.precision,
        ),
        seed=args.seed,
        weights_path=args.weights,
        plan_path=args.plan_path,
    )
    net_config = NetFrontConfig(
        host=host,
        port=port,
        auth_token=auth_token,
        max_connections=args.max_connections,
        max_sessions=args.max_sessions,
        idle_timeout_s=args.idle_timeout,
    )
    gateway = Gateway(RadarConfig(), DspConfig(), ModelConfig(), config)
    try:
        report = asyncio.run(serve_until_signal(gateway, net_config))
    finally:
        gateway.shutdown()
    get_logger("serve").info("netfront_exit", **{
        k: v for k, v in report.items()
        if not isinstance(v, (dict, list))
    })
    if args.dead_letter_log:
        gateway.dead_letters.export_jsonl(args.dead_letter_log)
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(report, fh, indent=2, default=float)
        print(f"stats -> {args.json_path}")
    return 0 if report.get("lost_clean_frames", 1) == 0 else 1


def _cmd_serve_gateway(args) -> int:
    """``mmhand serve --workers N``: the same simulated multi-client
    feed, served through the multi-process gateway."""
    import json
    import time

    from repro.config import DspConfig, ModelConfig, RadarConfig
    from repro.errors import QueueFullError
    from repro.gateway import Gateway, GatewayConfig
    from repro.obs.logging import configure, get_logger
    from repro.serving import ServingConfig

    configure(stream=sys.stdout)
    radar = RadarConfig()
    dsp = DspConfig()
    # Trace/profile exports are pool-wide merges here, not the single-
    # process exports the generic obs hooks would write: claim the
    # paths up front so those hooks skip them.
    trace_out, args.trace_out = args.trace_out, None
    profile_out, args.profile_out = args.profile_out, None
    if profile_out:
        from repro.obs.profiler import DEFAULT_HZ

        profile_hz = args.profile_hz or DEFAULT_HZ
    else:
        profile_hz = 0.0
    config = GatewayConfig(
        workers=args.workers,
        profile_hz=profile_hz,
        serving=ServingConfig(
            max_batch_size=args.batch_size,
            queue_capacity=args.queue_capacity,
            policy=args.policy,
            enable_cache=not args.no_cache,
            hop_frames=args.hop,
            shard_threads=args.shard_threads,
            precision=args.precision,
        ),
        seed=args.seed,
        weights_path=args.weights,
        plan_path=args.plan_path,
        chaos_frame_rate=args.chaos_frame_rate if args.chaos else 0.0,
        chaos_forward_rate=(
            args.chaos_forward_rate if args.chaos else 0.0
        ),
        chaos_compile_fail=args.chaos and args.chaos_compile_fail,
        chaos_seed=args.chaos_seed,
    )
    print(
        f"simulating {args.sessions} clients x {args.frames} frames "
        f"through {args.workers} gateway workers (batch<= "
        f"{args.batch_size}{', chaos=on' if args.chaos else ''})"
    )
    feeds = _simulated_client_frames(
        radar, args.sessions, args.frames, args.seed
    )
    results = []
    start = time.perf_counter()
    with Gateway(radar, dsp, ModelConfig(), config) as gateway:
        session_ids = [
            gateway.open_session() for _ in range(args.sessions)
        ]
        for tick in range(args.frames):
            for client, session_id in enumerate(session_ids):
                frame = feeds[client, tick]
                while True:
                    try:
                        gateway.submit(session_id, frame)
                        break
                    except QueueFullError:
                        results.extend(gateway.pump())
                        time.sleep(0.0005)
            results.extend(gateway.pump())
        results.extend(gateway.drain())
        elapsed = time.perf_counter() - start
        for session_id in session_ids:
            gateway.close_session(session_id)
        gateway.pump()
        stats = gateway.stats()

    counters = stats["counters"]
    latency = stats["histograms"].get("gateway.latency_s", {})
    logger = get_logger("serve")
    logger.info(
        "gateway_report",
        workers=args.workers,
        poses=len(results),
        frames_forwarded=counters.get("gateway.frames_forwarded", 0),
        acks=counters.get("gateway.acks", 0),
        elapsed_s=elapsed,
        poses_per_s=len(results) / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=latency.get("p50", 0.0) * 1e3,
        latency_p99_ms=latency.get("p99", 0.0) * 1e3,
        quarantined=counters.get("gateway.frames_quarantined", 0),
        dead_letters=stats["dead_letters"]["total"],
        worker_restarts=counters.get("gateway.worker_restarts", 0),
        health=stats["health"],
    )
    if args.json_path:
        stats["elapsed_s"] = elapsed
        with open(args.json_path, "w") as fh:
            json.dump(stats, fh, indent=2, default=float)
        print(f"stats -> {args.json_path}")
    if trace_out:
        # ONE merged Chrome trace: dispatcher + every worker process in
        # its own lane, worker forwards parented to dispatcher submits.
        path = gateway.export_chrome(trace_out)
        spans = len(gateway.trace_records())
        print(f"trace -> {path} ({spans} spans, merged across pool)")
    if profile_out:
        profiler = getattr(args, "profiler", None)
        extra = (
            {"dispatcher": profiler.to_dict()}
            if profiler is not None else None
        )
        _write_profile(profile_out, gateway.merged_profile(extra=extra))
    _export_observability(args)
    return 0


def _add_gateway_bench(subparsers) -> None:
    p = subparsers.add_parser(
        "gateway-bench",
        help="drive the open-loop load generator against the gateway "
             "at several worker counts and write a BENCH_serving.json "
             "scaling summary",
    )
    p.add_argument("--smoke", action="store_true",
                   help="short CI run (2 workers, small population); "
                        "exit code gates on zero lost clean frames")
    p.add_argument("--workers", default=None, metavar="N[,N...]",
                   help="comma-separated worker counts to sweep "
                        "(default: 1,2,4; smoke default: 2)")
    p.add_argument("--sessions", type=int, default=None,
                   help="simulated client sessions per run")
    p.add_argument("--frames", type=int, default=None,
                   help="frames fed per session")
    p.add_argument("--json", dest="json_path",
                   default="BENCH_serving.json",
                   help="summary output path (default: BENCH_serving.json)")
    p.add_argument("--seed", type=int, default=0)


def _cmd_gateway_bench(args) -> int:
    from repro.gateway.loadgen import (
        print_gateway_report,
        run_gateway_bench,
    )
    from repro.perf import write_bench_json

    if args.workers is not None:
        try:
            worker_counts = tuple(
                int(part) for part in args.workers.split(",") if part
            )
        except ValueError:
            print(f"bad --workers list {args.workers!r}", file=sys.stderr)
            return 1
        if not worker_counts or min(worker_counts) < 1:
            print("--workers needs positive counts", file=sys.stderr)
            return 1
    elif args.smoke:
        worker_counts = (2,)
    else:
        worker_counts = (1, 2, 4)

    summary = run_gateway_bench(
        worker_counts=worker_counts,
        smoke=args.smoke,
        seed=args.seed,
        sessions=args.sessions,
        frames_per_session=args.frames,
    )
    print_gateway_report(summary)
    write_bench_json(args.json_path, summary)
    print(f"summary -> {args.json_path}")
    lost = summary["lost_clean_frames"]
    if lost:
        print(
            f"{lost} clean frames were neither answered nor "
            "dead-lettered",
            file=sys.stderr,
        )
        return 1
    return 0


def _add_bench(subparsers) -> None:
    p = subparsers.add_parser(
        "bench",
        help="benchmark the DSP hot path (cube build, simulator, CFAR) "
             "and the compiled model forward; writes BENCH_pipeline.json "
             "and BENCH_model.json regression summaries",
    )
    p.add_argument("--smoke", action="store_true",
                   help="tiny workload for CI regression checks")
    p.add_argument("--json", dest="json_path",
                   default="BENCH_pipeline.json",
                   help="summary output path (default: BENCH_pipeline.json)")
    p.add_argument("--model-json", dest="model_json_path",
                   default="BENCH_model.json",
                   help="model bench output path (default: BENCH_model.json)")
    p.add_argument("--model-only", action="store_true",
                   help="skip the DSP stages; run only the compiled-vs-"
                        "eager model forward bench")
    p.add_argument("--repeats", type=int, default=3,
                   help="take the best of N timing repeats")
    p.add_argument("--seed", type=int, default=0)
    _add_obs_flags(p)


def _cmd_bench(args) -> int:
    from repro.perf import (
        print_model_report,
        print_pipeline_report,
        run_model_bench,
        run_pipeline_bench,
        write_bench_json,
    )

    if args.repeats < 1:
        print("--repeats must be >= 1", file=sys.stderr)
        return 1
    if not args.model_only:
        summary = run_pipeline_bench(
            smoke=args.smoke, repeats=args.repeats, seed=args.seed
        )
        print_pipeline_report(summary)
        write_bench_json(args.json_path, summary)
        print(f"summary -> {args.json_path}")
    model_summary = run_model_bench(
        smoke=args.smoke, repeats=args.repeats, seed=args.seed
    )
    print_model_report(model_summary)
    write_bench_json(args.model_json_path, model_summary)
    print(f"model summary -> {args.model_json_path}")
    _export_observability(args)
    if not model_summary["within_tolerance"]:
        print(
            "compiled forward diverged from eager beyond "
            f"{model_summary['tolerance']:.0e} "
            f"(max |diff| {model_summary['max_abs_diff']:.2e})",
            file=sys.stderr,
        )
        return 1
    quantized = model_summary.get("quantized")
    if quantized is not None and not quantized["within_budgets"]:
        print(
            "quantized execution exceeded its error budgets (float16 "
            f"{quantized['float16_max_diff_mm']:.3f} mm vs "
            f"{quantized['float16_budget_mm']:.1f} mm, int8 "
            f"{quantized['int8_mean_joint_err_mm']:.3f} mm vs "
            f"{quantized['int8_budget_mm']:.1f} mm)",
            file=sys.stderr,
        )
        return 1
    return 0


def _add_export_mesh(subparsers) -> None:
    p = subparsers.add_parser(
        "export-mesh",
        help="reconstruct a gesture's MANO mesh and write OBJ/SVG",
    )
    p.add_argument("gesture")
    p.add_argument("output_prefix",
                   help="writes <prefix>.obj and <prefix>.svg")
    p.add_argument("--fit-steps", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)


def _cmd_export_mesh(args) -> int:
    from repro.core.mesh_recovery import MeshReconstructor
    from repro.hand.gestures import gesture_pose, list_gestures
    from repro.hand.kinematics import forward_kinematics
    from repro.hand.shape import HandShape
    from repro.viz.mesh_io import mesh_summary, save_obj
    from repro.viz.svg import mesh_svg

    if args.gesture not in list_gestures():
        print(
            f"unknown gesture {args.gesture!r}; available: "
            f"{', '.join(list_gestures())}",
            file=sys.stderr,
        )
        return 1
    reconstructor = MeshReconstructor(seed=args.seed)
    reconstructor.fit(steps=args.fit_steps, batch_size=24)
    pose = gesture_pose(args.gesture, wrist_position=np.zeros(3))
    joints = forward_kinematics(HandShape(), pose)
    mesh = reconstructor.reconstruct(joints).mesh
    save_obj(mesh, args.output_prefix + ".obj")
    mesh_svg(mesh.vertices, mesh.faces, path=args.output_prefix + ".svg")
    summary = mesh_summary(mesh)
    print(
        f"wrote {args.output_prefix}.obj / .svg "
        f"({summary['num_vertices']:.0f} vertices, "
        f"{summary['num_faces']:.0f} faces)"
    )
    return 0


def _add_plan(subparsers) -> None:
    p = subparsers.add_parser(
        "plan",
        help="export / verify portable compiled-plan artifacts "
             "(folded weights, activation ranges, memory plans)",
    )
    plan_sub = p.add_subparsers(dest="plan_command", required=True)
    export = plan_sub.add_parser(
        "export",
        help="compile + calibrate the regressor and write "
             "<prefix>.json + <prefix>.npz",
    )
    export.add_argument(
        "prefix", help="artifact path prefix (writes <prefix>.json "
                       "and <prefix>.npz)"
    )
    export.add_argument(
        "--weights", default=None,
        help="trained weights .npz (random weights if omitted)"
    )
    export.add_argument(
        "--small", action="store_true",
        help="shrunken smoke configuration (matches bench --smoke)"
    )
    export.add_argument(
        "--calibration-segments", type=int, default=16,
        help="seeded capture-campaign segments recorded for int8 "
             "activation ranges (0 skips calibration; int8 then "
             "refuses to run)"
    )
    export.add_argument(
        "--batch-size", type=int, default=4,
        help="batch size whose static memory plans are precomputed "
             "into the artifact"
    )
    export.add_argument("--seed", type=int, default=0)
    verify = plan_sub.add_parser(
        "verify",
        help="run an exported artifact against the live eager model "
             "on a seeded batch; exit 1 on divergence",
    )
    verify.add_argument("prefix", help="artifact path prefix")
    verify.add_argument("--batch", type=int, default=4)
    verify.add_argument("--tolerance", type=float, default=1e-5)
    verify.add_argument("--json", dest="json_path", default=None,
                        help="write the verification report JSON")


def _cmd_plan(args) -> int:
    if args.plan_command == "export":
        return _cmd_plan_export(args)
    return _cmd_plan_verify(args)


def _cmd_plan_export(args) -> int:
    from repro.nn.inference import PRECISIONS
    from repro.nn.serialization import regressor_config_meta, save_plan
    from repro.core.regressor import HandJointRegressor
    from repro.perf.model_bench import bench_configs, calibration_segments

    if args.calibration_segments < 0:
        print("--calibration-segments must be >= 0", file=sys.stderr)
        return 1
    if args.batch_size < 1:
        print("--batch-size must be >= 1", file=sys.stderr)
        return 1
    dsp, model = bench_configs(smoke=args.small)
    regressor = HandJointRegressor(dsp, model, seed=args.seed)
    if args.weights is not None:
        from repro.nn.serialization import load_state

        load_state(regressor, args.weights)
    regressor.eval()
    compiled = regressor.compiled()
    if compiled is None:
        print("model failed to compile; nothing to export",
              file=sys.stderr)
        return 1
    if args.calibration_segments > 0:
        segments = calibration_segments(
            dsp, count=args.calibration_segments, seed=args.seed
        )
        registers = regressor.calibrate(segments)
        print(
            f"calibrated {registers} activation registers on "
            f"{len(segments)} campaign segments"
        )
    # Warm the static memory plans the artifact should carry: one per
    # (shape, precision) signature at the serving batch size.
    rng = np.random.default_rng(args.seed)
    warm = regressor.normalize_inputs(
        rng.normal(
            size=(
                args.batch_size, dsp.segment_frames, dsp.doppler_bins,
                dsp.range_bins, dsp.angle_bins_total,
            )
        ).astype(np.float32)
    )
    for precision in PRECISIONS:
        if precision == "int8" and not compiled.act_ranges:
            continue
        compiled.run(warm, precision=precision)
    json_path, npz_path = save_plan(
        compiled, args.prefix,
        config=regressor_config_meta(
            regressor, seed=args.seed, weights_path=args.weights
        ),
    )
    stats = compiled.stats()
    print(
        f"plan: {stats['ops']} ops over {stats['params']} params, "
        f"{stats['memory_plans']} memory plans "
        f"(planned {stats['planned_bytes']} B vs arena "
        f"{stats['arena_bytes']} B), calibrated={stats['calibrated']}"
    )
    print(f"artifact -> {json_path} + {npz_path}")
    return 0


def _cmd_plan_verify(args) -> int:
    import json

    from repro.errors import SerializationError
    from repro.nn.serialization import verify_plan

    try:
        report = verify_plan(
            args.prefix, batch=args.batch, tolerance=args.tolerance
        )
    except SerializationError as error:
        print(f"plan verify failed: {error}", file=sys.stderr)
        return 1
    print(
        f"artifact {report['artifact']}: {report['ops']} ops, "
        f"{report['memory_plans']} memory plans, config hash "
        f"{report['config_hash']}"
    )
    print(
        f"float32: max|plan - eager| {report['max_abs_diff']:.2e} "
        f"(tolerance {report['tolerance']:.0e}, "
        f"ok: {report['float32_ok']})"
    )
    if "float16_max_diff_mm" in report:
        print(
            f"float16: max joint diff {report['float16_max_diff_mm']:.3f} "
            f"mm (budget {report['float16_budget_mm']:.1f} mm, "
            f"ok: {report['float16_ok']})"
        )
        print(
            f"int8: mean joint error {report['int8_mean_joint_err_mm']:.3f} "
            f"mm (budget {report['int8_budget_mm']:.1f} mm, "
            f"ok: {report['int8_ok']})"
        )
    else:
        print("no activation ranges in artifact; quantized modes "
              "not checked")
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(report, fh, indent=2, default=float)
        print(f"report -> {args.json_path}")
    if not report["passed"]:
        print("plan verification FAILED", file=sys.stderr)
        return 1
    print("plan verification passed")
    return 0


def _add_trace(subparsers) -> None:
    p = subparsers.add_parser(
        "trace",
        help="run another mmhand command under the span tracer, print "
             "a span summary, and export a Chrome trace",
    )
    p.add_argument(
        "rest", nargs=argparse.REMAINDER, metavar="command",
        help="the wrapped command line, e.g. "
             "'bench --smoke --trace-out trace.json'",
    )


def _cmd_trace(args) -> int:
    from repro.obs import trace as obs_trace

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print("trace: missing command to run", file=sys.stderr)
        return 1
    if rest[0] == "trace":
        print("trace: cannot nest the trace wrapper", file=sys.stderr)
        return 1
    tracer = obs_trace.get_tracer()
    tracer.clear()
    code = main(rest)
    summary = tracer.summary()
    if summary:
        print("--- span summary ---")
        width = max(len(name) for name in summary)
        for name in sorted(summary):
            row = summary[name]
            line = (
                f"{name:<{width}s} x{row['count']:<6.0f} "
                f"total {row['total_s'] * 1e3:9.2f} ms  "
                f"mean {row['mean_s'] * 1e3:8.3f} ms  "
                f"max {row['max_s'] * 1e3:8.3f} ms"
            )
            if row["errors"]:
                line += f"  errors {row['errors']:.0f}"
            print(line)
    if "--trace-out" not in rest:
        path = obs_trace.export_chrome("TRACE.json")
        print(f"trace -> {path}")
    return code


def _add_profile(subparsers) -> None:
    p = subparsers.add_parser(
        "profile",
        help="run another mmhand command under the sampling profiler, "
             "print the hot frames, and write a folded-stack profile",
    )
    p.add_argument(
        "--hz", type=float, default=None, metavar="HZ",
        help="sampling rate (default 97 Hz)",
    )
    p.add_argument(
        "--out", default="PROFILE.folded", metavar="PATH",
        help="folded-stack output path (default: PROFILE.folded)",
    )
    p.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="hot leaf frames to print (default: 10)",
    )
    p.add_argument(
        "rest", nargs=argparse.REMAINDER, metavar="command",
        help="the wrapped command line, e.g. 'bench --smoke'",
    )


def _cmd_profile(args) -> int:
    from repro.obs.profiler import DEFAULT_HZ, SamplingProfiler

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print("profile: missing command to run", file=sys.stderr)
        return 1
    if rest[0] == "profile":
        print(
            "profile: cannot nest the profile wrapper", file=sys.stderr
        )
        return 1
    profiler = SamplingProfiler(hz=args.hz or DEFAULT_HZ)
    with profiler:
        code = main(rest)
    print("--- profile ---")
    print(profiler.report(limit=args.top))
    _write_profile(
        args.out, profiler.to_dict(),
        overhead=profiler.overhead_ratio(),
    )
    return code


def _add_gateway_trace(subparsers) -> None:
    p = subparsers.add_parser(
        "gateway-trace",
        help="smoke-run the multi-process gateway with distributed "
             "tracing on, export ONE merged Chrome trace with "
             "per-process lanes, and verify the cross-process spans "
             "stitched together",
    )
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--sessions", type=int, default=8,
                   help="simulated client sessions (default: 8)")
    p.add_argument("--frames", type=int, default=6,
                   help="frames per session (default: 6)")
    p.add_argument(
        "--out", default="TRACE_gateway.json", metavar="PATH",
        help="merged Chrome trace path (default: TRACE_gateway.json)",
    )
    p.add_argument(
        "--profile-hz", dest="profile_hz", type=float, default=0.0,
        metavar="HZ",
        help="also sample worker stacks at this rate and print the "
             "merged hot frames (default: off)",
    )
    p.add_argument("--seed", type=int, default=0)


def _cmd_gateway_trace(args) -> int:
    """Acceptance gate for the distributed-tracing path: one run, one
    merged trace, every worker forward span parented to its dispatcher
    submit span through the ring-propagated context."""
    from repro.gateway import Gateway, GatewayConfig
    from repro.gateway.loadgen import (
        LoadgenConfig,
        bench_configs,
        run_loadgen,
    )
    from repro.obs import trace as obs_trace
    from repro.serving import ServingConfig

    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 1
    obs_trace.clear()
    radar, dsp, model = bench_configs()
    config = GatewayConfig(
        workers=args.workers,
        ring_slots=128,
        serving=ServingConfig(
            max_batch_size=16, queue_capacity=64, policy="block"
        ),
        seed=args.seed,
        profile_hz=args.profile_hz,
    )
    with Gateway(radar, dsp, model, config) as gateway:
        summary = run_loadgen(
            gateway,
            LoadgenConfig(
                sessions=args.sessions,
                frames_per_session=args.frames,
                seed=args.seed,
            ),
        )
        gateway.stats()
    # The shutdown byes delivered each worker's remaining spans.
    records = gateway.trace_records()
    path = gateway.export_chrome(args.out)

    submits = {
        (r["fields"]["session"], r["fields"]["frame_id"]): r
        for r in records
        if r["name"] == "gateway.submit"
    }
    forwards = [r for r in records if r["name"] == "worker.forward"]
    orphans = sum(
        1
        for r in forwards
        if (key := (r["fields"]["session"], r["fields"]["frame_id"]))
        not in submits
        or r["parent_id"] != submits[key]["span_id"]
        or r["trace_id"] != submits[key]["trace_id"]
    )
    worker_pids = sorted({r["pid"] for r in forwards})
    stage_counts = {
        stage: int(entry["count"])
        for stage, entry in summary.get("stage_latency_ms", {}).items()
    }
    print(
        f"gateway-trace: {len(records)} spans "
        f"({len(submits)} submits, {len(forwards)} forwards) from "
        f"{1 + len(worker_pids)} processes; stage samples "
        f"{stage_counts}"
    )
    print(f"trace -> {path}")
    if args.profile_hz > 0:
        profile = gateway.merged_profile()
        print(
            f"merged profile: {profile['samples']} samples across "
            f"{len(profile['counts'])} stacks"
        )
        if not profile["samples"]:
            print("gateway-trace: profiler captured no samples",
                  file=sys.stderr)
            return 1

    ok = True
    if not forwards:
        print("gateway-trace: no worker-side forward spans arrived",
              file=sys.stderr)
        ok = False
    if orphans:
        print(
            f"gateway-trace: {orphans} forward spans lost their "
            "dispatcher parent",
            file=sys.stderr,
        )
        ok = False
    if len(worker_pids) < min(args.workers, args.sessions):
        print(
            f"gateway-trace: spans from only {len(worker_pids)} of "
            f"{args.workers} workers",
            file=sys.stderr,
        )
        ok = False
    return 0 if ok else 1


def _add_campaign(subparsers) -> None:
    p = subparsers.add_parser(
        "campaign",
        help="campaign-scale data engine: sharded parallel generation, "
             "streaming data-parallel training, and its benchmark",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    gen = campaign_sub.add_parser(
        "generate",
        help="generate a sharded, domain-randomized campaign directory "
             "(atomic .npz shards + manifest.json)",
    )
    gen.add_argument("output", help="campaign directory to create")
    gen.add_argument("--shards", type=int, default=8)
    gen.add_argument("--segments-per-shard", type=int, default=16)
    gen.add_argument("--workers", type=int, default=1,
                     help="generator processes (shards fan out over a "
                          "process pool; output is byte-identical for "
                          "any worker count)")
    gen.add_argument("--users", type=int, default=4)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--small", action="store_true",
                     help="shrunken smoke configuration (matches "
                          "'campaign bench --smoke')")
    _add_obs_flags(gen)

    train = campaign_sub.add_parser(
        "train",
        help="train from a campaign directory with streaming prefetch "
             "and data-parallel workers",
    )
    train.add_argument("dataset", help="campaign directory from "
                                       "'campaign generate'")
    train.add_argument("weights", help="output weights path (.npz)")
    train.add_argument("--epochs", type=int, default=15)
    train.add_argument("--batch-size", type=int, default=16)
    train.add_argument("--learning-rate", type=float, default=1e-3)
    train.add_argument("--gamma-kinematic", type=float, default=0.1)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--small", action="store_true",
                       help="shrunken model (for campaigns generated "
                            "with --small)")
    train.add_argument("--checkpoint-dir", default=None, metavar="DIR")
    train.add_argument("--checkpoint-every", type=int, default=1)
    train.add_argument("--resume-from", default=None, metavar="PATH",
                       help="resume from a checkpoint (or 'auto' to "
                            "pick the newest in --checkpoint-dir)")
    _add_worker_flags(train)
    _add_obs_flags(train)

    bench = campaign_sub.add_parser(
        "bench",
        help="run the campaign data-engine benchmark (generation "
             "speedup + worker invariance, prefetch overlap, "
             "data-parallel training bit-identity)",
    )
    bench.add_argument("--json", dest="json_path", default=None,
                       help="write the summary JSON "
                            "(e.g. BENCH_training.json)")
    bench.add_argument("--smoke", action="store_true",
                       help="shrunken configuration for CI")
    bench.add_argument("--workers", type=int, default=None,
                       help="parallel generation fan-out "
                            "(default: min(4, cpu_count))")
    bench.add_argument("--seed", type=int, default=11)


def _cmd_campaign(args) -> int:
    if args.campaign_command == "generate":
        return _cmd_campaign_generate(args)
    if args.campaign_command == "train":
        return _train_campaign(args)
    return _cmd_campaign_bench(args)


def _cmd_campaign_generate(args) -> int:
    from repro.campaign import generate_campaign
    from repro.config import CampaignConfig
    from repro.obs.logging import configure
    from repro.perf.training_bench import campaign_bench_configs

    configure(stream=sys.stdout)
    if args.small:
        radar, dsp, _, campaign = campaign_bench_configs(smoke=True)
        campaign = CampaignConfig(
            num_users=args.users,
            segments_per_user=campaign.segments_per_user,
        )
    else:
        radar, dsp, campaign = None, None, CampaignConfig(
            num_users=args.users
        )
    report = generate_campaign(
        args.output, args.shards, args.segments_per_shard,
        radar=radar, dsp=dsp, campaign=campaign,
        seed=args.seed, workers=args.workers, verbose=True,
    )
    print(
        f"wrote {report.num_shards} shards / {report.total_segments} "
        f"segments ({report.total_frames} frames) to {args.output} "
        f"in {report.elapsed_s:.1f}s "
        f"({report.frames_per_s:.1f} frames/s, x{report.workers})"
    )
    _export_observability(args)
    return 0


def _cmd_campaign_bench(args) -> int:
    from repro.perf import (
        print_training_report,
        run_training_bench,
        write_bench_json,
    )

    summary = run_training_bench(
        smoke=args.smoke, seed=args.seed, workers=args.workers
    )
    print_training_report(summary)
    if args.json_path:
        write_bench_json(args.json_path, summary)
        print(f"wrote {args.json_path}")
    if not summary["training"]["losses_bit_identical"]:
        print("campaign bench: data-parallel losses diverged from the "
              "sequential reference", file=sys.stderr)
        return 1
    if not summary["generation"]["worker_invariant"]:
        print("campaign bench: parallel generation produced different "
              "shard bytes than serial", file=sys.stderr)
        return 1
    return 0


def _add_netfront_bench(subparsers) -> None:
    p = subparsers.add_parser(
        "netfront-bench",
        help="loopback benchmark of the TCP front end: connection "
             "setup and frame round-trip latency, robustness counters "
             "as hard invariants, optional protocol-fuzz drill",
    )
    p.add_argument("--smoke", action="store_true",
                   help="small sizes for CI")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--clients", type=int, default=None,
                   help="concurrent clean clients (default: 2 smoke / "
                        "4 full)")
    p.add_argument("--frames", type=int, default=None,
                   help="frames per client (default: 4 smoke / 8 full)")
    p.add_argument(
        "--fuzz-s", type=float, default=0.0, metavar="S",
        help="also run the seeded protocol fuzzer against the server "
             "for S seconds while the clean clients stream (gates on "
             "zero lost clean frames and zero worker restarts)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", dest="json_path", default=None,
                   help="write the summary JSON to this path")
    p.add_argument("--dead-letter-log", default=None, metavar="PATH",
                   help="export quarantined inputs as JSONL")


def _cmd_netfront_bench(args) -> int:
    import json

    from repro.perf import netfront_invariants_ok, run_netfront_bench

    summary = run_netfront_bench(
        smoke=args.smoke,
        seed=args.seed,
        workers=args.workers,
        clients=args.clients,
        frames_per_client=args.frames,
        fuzz_s=args.fuzz_s,
        dead_letter_path=args.dead_letter_log,
    )
    setup = summary["connection_setup"]
    rtt = summary["round_trip"]
    print(
        f"netfront-bench: {summary['clients']} clients, "
        f"{summary['frames_sent']} frames, "
        f"{summary['poses_received']} poses in "
        f"{summary['elapsed_s']:.2f}s"
    )
    print(
        f"  connection setup p50 {setup['p50_ms']:.2f} ms "
        f"p95 {setup['p95_ms']:.2f} ms | round trip "
        f"p50 {rtt['p50_ms']:.2f} ms p95 {rtt['p95_ms']:.2f} ms"
    )
    if "fuzz" in summary:
        fuzz = summary["fuzz"]
        print(
            f"  fuzz drill: {fuzz['fuzzer_connections']} poisoned "
            f"connections quarantined, {fuzz['protocol_errors']} "
            f"protocol errors dead-lettered in {fuzz['duration_s']:.0f}s"
        )
    inv = summary["invariants"]
    print(
        f"  invariants: lost_clean_frames={inv['lost_clean_frames']} "
        f"worker_restarts={inv['worker_restarts']} "
        f"poses_shed={inv['poses_shed']} "
        f"frames_rejected={inv['frames_rejected']}"
    )
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(summary, fh, indent=2, default=float)
        print(f"summary -> {args.json_path}")
    if args.dead_letter_log:
        print(f"dead letters -> {args.dead_letter_log}")
    if not netfront_invariants_ok(summary):
        print("netfront-bench: INVARIANTS FAILED", file=sys.stderr)
        return 1
    return 0


def _add_bench_compare(subparsers) -> None:
    p = subparsers.add_parser(
        "bench-compare",
        help="guard against benchmark regressions: compare a fresh "
             "BENCH_*.json against the committed baseline on portable "
             "ratio and invariant checks",
    )
    p.add_argument("fresh", help="freshly produced benchmark JSON")
    p.add_argument("committed", help="committed baseline JSON")
    p.add_argument(
        "--tolerance", type=float, default=None,
        help="relative slack on ratio checks (default: 0.5)",
    )


def _cmd_bench_compare(args) -> int:
    import json

    from repro.errors import ReproError
    from repro.perf import compare_bench, print_comparison
    from repro.perf.regression import DEFAULT_TOLERANCE

    summaries = []
    for path in (args.fresh, args.committed):
        try:
            with open(path) as fh:
                summaries.append(json.load(fh))
        except (OSError, ValueError) as exc:
            print(f"bench-compare: cannot read {path}: {exc}",
                  file=sys.stderr)
            return 1
    tolerance = (
        args.tolerance if args.tolerance is not None
        else DEFAULT_TOLERANCE
    )
    try:
        result = compare_bench(
            summaries[0], summaries[1], tolerance=tolerance
        )
    except ReproError as exc:
        print(f"bench-compare: {exc}", file=sys.stderr)
        return 1
    print_comparison(result)
    return 0 if result["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mmhand",
        description="mmHand reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_train(subparsers)
    _add_evaluate(subparsers)
    _add_demo(subparsers)
    _add_serve(subparsers)
    _add_gateway_bench(subparsers)
    _add_bench(subparsers)
    _add_export_mesh(subparsers)
    _add_plan(subparsers)
    _add_trace(subparsers)
    _add_profile(subparsers)
    _add_gateway_trace(subparsers)
    _add_campaign(subparsers)
    _add_bench_compare(subparsers)
    _add_netfront_bench(subparsers)
    return parser


_COMMANDS = {
    "generate-data": _cmd_generate,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "demo": _cmd_demo,
    "serve": _cmd_serve,
    "gateway-bench": _cmd_gateway_bench,
    "gateway-trace": _cmd_gateway_trace,
    "bench": _cmd_bench,
    "bench-compare": _cmd_bench_compare,
    "netfront-bench": _cmd_netfront_bench,
    "export-mesh": _cmd_export_mesh,
    "plan": _cmd_plan,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "campaign": _cmd_campaign,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    profiler = None
    if getattr(args, "profile_out", None):
        from repro.obs.profiler import DEFAULT_HZ, SamplingProfiler

        profiler = SamplingProfiler(
            hz=args.profile_hz or DEFAULT_HZ
        ).start()
        # Commands that merge multi-process samples (the gateway serve
        # path) read this handle and take over the export themselves.
        args.profiler = profiler
    try:
        return _COMMANDS[args.command](args)
    finally:
        if profiler is not None:
            profiler.stop()
            if getattr(args, "profile_out", None):
                _write_profile(
                    args.profile_out, profiler.to_dict(),
                    overhead=profiler.overhead_ratio(),
                )


if __name__ == "__main__":
    sys.exit(main())
