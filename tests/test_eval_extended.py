"""Tests of the extended metrics: Procrustes alignment, PA-MPJPE,
bone-length error, per-joint tables and error decomposition."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.extended import (
    bone_length_error,
    bone_lengths,
    localisation_vs_pose_error,
    pa_mpjpe,
    per_joint_error_table,
    procrustes_align,
)
from repro.hand.gestures import gesture_pose
from repro.hand.joints import JOINT_NAMES
from repro.hand.kinematics import forward_kinematics, rotation_about_axis
from repro.hand.shape import HandShape


@pytest.fixture
def joints():
    pose = gesture_pose("open_palm", wrist_position=np.zeros(3))
    return forward_kinematics(HandShape(), pose)


def test_procrustes_recovers_rigid_transform(joints):
    rot = rotation_about_axis(np.array([0.3, 0.5, 0.8]), 0.7)
    moved = joints @ rot.T + np.array([0.1, -0.2, 0.05])
    aligned = procrustes_align(moved, joints)
    assert np.abs(aligned - joints).max() < 1e-9


def test_procrustes_with_scale(joints):
    scaled = joints * 1.3 + np.array([0.2, 0.0, 0.0])
    aligned = procrustes_align(scaled, joints, allow_scale=True)
    assert np.abs(aligned - joints).max() < 1e-9
    # Without scale compensation the alignment cannot be exact.
    rigid_only = procrustes_align(scaled, joints, allow_scale=False)
    assert np.abs(rigid_only - joints).max() > 1e-3


def test_procrustes_validates(joints):
    with pytest.raises(EvaluationError):
        procrustes_align(joints[:20], joints)


def test_pa_mpjpe_zero_for_rigid_motion(joints):
    rot = rotation_about_axis(np.array([0.0, 0.0, 1.0]), 0.4)
    moved = joints @ rot.T + np.array([0.3, 0.0, 0.0])
    assert pa_mpjpe(moved, joints) < 1e-6
    # Plain MPJPE sees the full displacement.
    from repro.eval.metrics import mpjpe

    assert mpjpe(moved, joints) > 50.0


def test_pa_mpjpe_nonzero_for_pose_change(joints):
    fist = forward_kinematics(
        HandShape(), gesture_pose("fist", wrist_position=np.zeros(3))
    )
    assert pa_mpjpe(fist, joints) > 10.0


def test_pa_mpjpe_validates(joints):
    with pytest.raises(EvaluationError):
        pa_mpjpe(joints[None, :, :2], joints[None, :, :2])


def test_bone_lengths_match_shape(joints):
    lengths = bone_lengths(joints)
    assert lengths.shape == (1, 20)
    shape = HandShape()
    # Chain bones (non-root) should equal the configured phalange lengths.
    from repro.hand.joints import PHALANGES, WRIST

    for k, (parent, child) in enumerate(PHALANGES):
        if parent == WRIST:
            continue
        finger_index = (child - 1) // 4
        finger = list(shape.phalange_lengths)[finger_index]
        seg = (child - 1) % 4 - 1
        expected = shape.phalange_lengths[finger][seg]
        assert lengths[0, k] == pytest.approx(expected, rel=1e-6)


def test_bone_length_error_zero_for_same_pose(joints):
    fist = forward_kinematics(
        HandShape(), gesture_pose("fist", wrist_position=np.zeros(3))
    )
    # Different poses, same rigid hand: bone lengths agree.
    assert bone_length_error(fist, joints) < 1e-6


def test_bone_length_error_detects_stretching(joints):
    stretched = joints * 1.1
    assert bone_length_error(stretched, joints) > 1.0


def test_per_joint_table_names(joints):
    table = per_joint_error_table(joints + 0.01, joints)
    assert set(table) == set(JOINT_NAMES)
    for value in table.values():
        assert value == pytest.approx(10 * np.sqrt(3), rel=1e-3)


def test_localisation_vs_pose_split(joints):
    offset = joints + np.array([0.05, 0.0, 0.0])
    loc, pose_err = localisation_vs_pose_error(offset, joints)
    assert loc == pytest.approx(50.0, rel=1e-3)
    assert pose_err < 1e-6
