"""Tests of IF-signal synthesis: the radar physics must encode range,
velocity and angle exactly where the DSP expects them."""

import numpy as np
import pytest

from repro.config import SPEED_OF_LIGHT, RadarConfig
from repro.errors import RadarError
from repro.radar.antenna import iwr1443_array
from repro.radar.chirp import synthesize_frame
from repro.radar.radar import RadarSimulator
from repro.radar.scene import Scatterers, Scene


@pytest.fixture
def config():
    return RadarConfig(noise_std=0.0)


@pytest.fixture
def array(config):
    return iwr1443_array(config)


def point(position, velocity=(0, 0, 0), amplitude=1.0):
    return Scatterers(
        positions=np.array([position], dtype=float),
        velocities=np.array([velocity], dtype=float),
        amplitudes=np.array([amplitude]),
    )


def test_output_shape(config, array):
    data = synthesize_frame(config, array, point([0.4, 0, 0]))
    assert data.shape == (12, config.chirp_loops, config.samples_per_chirp)
    assert data.dtype == np.complex128


def test_range_encoded_in_beat_frequency(config, array):
    """The FFT peak along fast time must land on the true range bin."""
    for true_range in (0.25, 0.5, 0.75):
        data = synthesize_frame(config, array, point([true_range, 0, 0]))
        spectrum = np.abs(np.fft.fft(data[0, 0]))
        peak = np.argmax(spectrum[: config.samples_per_chirp // 2])
        measured = peak * config.range_resolution_m
        assert measured == pytest.approx(
            true_range, abs=config.range_resolution_m
        )


def test_velocity_encoded_in_slow_time_phase(config, array):
    """Chirp-to-chirp phase advances by 4 pi v T_rep / lambda."""
    v = 1.0
    data = synthesize_frame(
        config, array, point([0.4, 0, 0], velocity=[v, 0, 0])
    )
    # Phase difference between consecutive loops on one antenna/sample.
    phase = np.angle(data[0, 1, 0] * np.conj(data[0, 0, 0]))
    expected = 4 * np.pi * v * config.chirp_repetition_s / config.wavelength_m
    expected = (expected + np.pi) % (2 * np.pi) - np.pi
    assert phase == pytest.approx(expected, abs=1e-6)


def test_angle_encoded_in_antenna_phase(config, array):
    """Adjacent azimuth-row antennas differ by 2 pi d sin(az)."""
    azimuth = np.radians(15.0)
    r = 0.5
    position = [r * np.cos(azimuth), r * np.sin(azimuth), 0.0]
    data = synthesize_frame(config, array, point(position))
    # Virtual elements 0 and 1 (TX1, RX0/RX1) sit half a wavelength apart.
    phase = np.angle(data[1, 0, 0] * np.conj(data[0, 0, 0]))
    expected = 2 * np.pi * 0.5 * np.sin(azimuth)
    assert phase == pytest.approx(expected, abs=1e-3)


def test_amplitude_falls_with_range_squared(config, array):
    near = synthesize_frame(config, array, point([0.3, 0, 0]))
    far = synthesize_frame(config, array, point([0.6, 0, 0]))
    ratio = np.abs(near).max() / np.abs(far).max()
    assert ratio == pytest.approx(4.0, rel=0.05)


def test_superposition(config, array):
    a = point([0.3, 0, 0])
    b = point([0.6, 0.1, 0])
    both = Scatterers.concatenate([a, b])
    data_a = synthesize_frame(config, array, a)
    data_b = synthesize_frame(config, array, b)
    data_ab = synthesize_frame(config, array, both)
    assert np.allclose(data_ab, data_a + data_b, atol=1e-12)


def test_empty_scene_is_noise_only():
    config = RadarConfig(noise_std=0.1)
    array = iwr1443_array(config)
    data = synthesize_frame(
        config, array, Scatterers.empty(), np.random.default_rng(0)
    )
    assert np.abs(data).max() < 1.0
    # Circular complex noise: each quadrature has std noise_std/sqrt(2).
    assert data.real.std() == pytest.approx(0.1 / np.sqrt(2), rel=0.1)
    assert data.imag.std() == pytest.approx(0.1 / np.sqrt(2), rel=0.1)


def test_zero_noise_no_rng_needed(config, array):
    data = synthesize_frame(config, array, point([0.4, 0, 0]), rng=None)
    assert np.all(np.isfinite(data))


def test_scatterer_at_origin_rejected(config, array):
    with pytest.raises(RadarError):
        synthesize_frame(config, array, point([0, 0, 0]))


def test_simulator_sequence(config):
    sim = RadarSimulator(config)
    scene = Scene(hand=point([0.4, 0, 0]))
    frames = sim.sequence([scene, scene, scene])
    assert frames.shape[0] == 3
    with pytest.raises(RadarError):
        sim.sequence([])


def test_simulator_rejects_mismatched_array(config):
    other = iwr1443_array(RadarConfig(num_tx=2, num_rx=2))
    with pytest.raises(RadarError):
        RadarSimulator(config, array=other)


def test_noise_is_reproducible_per_seed(config):
    config_noisy = RadarConfig(noise_std=0.05)
    scene = Scene(hand=point([0.4, 0, 0]))
    a = RadarSimulator(config_noisy, seed=3).frame(scene)
    b = RadarSimulator(config_noisy, seed=3).frame(scene)
    assert np.array_equal(a, b)
