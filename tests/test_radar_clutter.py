"""Tests of environment clutter, body and occluder models."""

import numpy as np
import pytest

from repro.errors import RadarError
from repro.radar.clutter import (
    ENVIRONMENTS,
    OCCLUDER_MATERIALS,
    BodyPosition,
    body_scatterers,
    environment_scatterers,
    occluder_scatterers,
)


def test_environment_registry_has_paper_sites():
    for env in ("playground", "corridor", "classroom"):
        assert env in ENVIRONMENTS


def test_playground_is_sparsest():
    rng = np.random.default_rng(0)
    playground = environment_scatterers("playground",
                                        np.random.default_rng(0))
    classroom = environment_scatterers("classroom",
                                       np.random.default_rng(0))
    assert len(playground) < len(classroom)
    assert rng is not None


def test_unknown_environment_raises():
    with pytest.raises(RadarError):
        environment_scatterers("moon", np.random.default_rng(0))


def test_static_clutter_fixed_per_seed():
    a = environment_scatterers("classroom", np.random.default_rng(5),
                               time_s=0.0)
    b = environment_scatterers("classroom", np.random.default_rng(5),
                               time_s=0.0)
    assert np.allclose(a.positions, b.positions)


def test_movers_move_over_time():
    a = environment_scatterers("classroom", np.random.default_rng(5),
                               time_s=0.0)
    b = environment_scatterers("classroom", np.random.default_rng(5),
                               time_s=1.0)
    # Static part identical, mover positions differ.
    n_static = ENVIRONMENTS["classroom"].num_static
    assert np.allclose(a.positions[:n_static], b.positions[:n_static])
    assert not np.allclose(a.positions[n_static:], b.positions[n_static:])


def test_clutter_is_farther_than_hand():
    s = environment_scatterers("classroom", np.random.default_rng(1))
    assert s.positions[:, 0].min() > 1.0


def test_body_absent_gives_empty():
    s = body_scatterers(BodyPosition.ABSENT, np.random.default_rng(0))
    assert len(s) == 0


def test_body_front_behind_hand():
    s = body_scatterers(
        BodyPosition.FRONT, np.random.default_rng(0), hand_range_m=0.3
    )
    assert len(s) > 0
    assert s.positions[:, 0].mean() > 0.5
    assert abs(s.positions[:, 1].mean()) < 0.3


def test_body_side_is_offset_in_azimuth():
    s = body_scatterers(
        BodyPosition.SIDE, np.random.default_rng(0), hand_range_m=0.3
    )
    assert s.positions[:, 1].mean() > 0.2


def test_body_rcs_scales_amplitude():
    small = body_scatterers(
        BodyPosition.FRONT, np.random.default_rng(0), body_rcs=0.5
    )
    large = body_scatterers(
        BodyPosition.FRONT, np.random.default_rng(0), body_rcs=2.0
    )
    assert np.allclose(large.amplitudes, 4.0 * small.amplitudes)


def test_occluder_registry_matches_paper():
    assert set(OCCLUDER_MATERIALS) == {"a4_paper", "cloth", "wood_board"}
    # The board attenuates most and reflects most.
    board = OCCLUDER_MATERIALS["wood_board"]
    paper = OCCLUDER_MATERIALS["a4_paper"]
    assert board.transmission < paper.transmission
    assert board.reflection > paper.reflection


def test_occluder_scatterers_near_radar():
    s = occluder_scatterers(
        OCCLUDER_MATERIALS["wood_board"], np.random.default_rng(0)
    )
    assert len(s) > 0
    # Occluders sit right at the radar, below the hand band's low edge,
    # so the bandpass removes their own reflection (their effect is the
    # transmission loss on the hand).
    assert np.allclose(
        s.positions[:, 0], OCCLUDER_MATERIALS["wood_board"].range_m
    )
    assert OCCLUDER_MATERIALS["wood_board"].range_m < 0.08


def test_occluder_none_gives_empty():
    assert len(occluder_scatterers(None, np.random.default_rng(0))) == 0
