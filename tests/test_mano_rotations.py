"""Tests of rotation representation conversions."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.mano.rotations import (
    axis_angle_to_matrix,
    axis_angle_to_quaternion,
    matrix_to_axis_angle,
    matrix_to_quaternion,
    normalize_quaternion,
    quaternion_to_axis_angle,
    quaternion_to_matrix,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def random_axis_angles(rng, n=20):
    axes = rng.normal(size=(n, 3))
    axes /= np.linalg.norm(axes, axis=1, keepdims=True)
    angles = rng.uniform(0.01, np.pi - 0.01, size=(n, 1))
    return axes * angles


def test_axis_angle_matrix_round_trip(rng):
    aa = random_axis_angles(rng)
    mats = axis_angle_to_matrix(aa)
    back = matrix_to_axis_angle(mats)
    assert np.allclose(back, aa, atol=1e-8)


def test_axis_angle_to_matrix_identity():
    mat = axis_angle_to_matrix(np.zeros(3))
    assert np.allclose(mat, np.eye(3))


def test_matrices_are_orthonormal(rng):
    mats = axis_angle_to_matrix(random_axis_angles(rng))
    for mat in mats:
        assert np.allclose(mat @ mat.T, np.eye(3), atol=1e-10)
        assert np.isclose(np.linalg.det(mat), 1.0)


def test_quaternion_matrix_round_trip(rng):
    aa = random_axis_angles(rng)
    quats = axis_angle_to_quaternion(aa)
    mats = quaternion_to_matrix(quats)
    back = matrix_to_quaternion(mats)
    # Canonical sign: w >= 0, so round trip is exact.
    assert np.allclose(back, quats, atol=1e-8)


def test_quaternion_axis_angle_round_trip(rng):
    aa = random_axis_angles(rng)
    back = quaternion_to_axis_angle(axis_angle_to_quaternion(aa))
    assert np.allclose(back, aa, atol=1e-8)


def test_quaternion_matrix_agrees_with_axis_angle(rng):
    aa = random_axis_angles(rng)
    direct = axis_angle_to_matrix(aa)
    via_quat = quaternion_to_matrix(axis_angle_to_quaternion(aa))
    assert np.allclose(direct, via_quat, atol=1e-10)


def test_quaternion_sign_invariance(rng):
    aa = random_axis_angles(rng, 5)
    quats = axis_angle_to_quaternion(aa)
    assert np.allclose(
        quaternion_to_matrix(quats), quaternion_to_matrix(-quats),
        atol=1e-12,
    )


def test_normalize_quaternion_rejects_zero():
    with pytest.raises(MeshError):
        normalize_quaternion(np.zeros(4))


def test_axis_angle_identity_quaternion():
    quat = axis_angle_to_quaternion(np.zeros((2, 3)))
    assert np.allclose(quat, [[1, 0, 0, 0], [1, 0, 0, 0]])


def test_matrix_to_quaternion_trace_branches():
    """Exercise all four branches of Shepperd's method."""
    for axis, angle in (
        ([1, 0, 0], 3.0),
        ([0, 1, 0], 3.0),
        ([0, 0, 1], 3.0),
        ([1, 1, 1], 0.3),
    ):
        axis = np.asarray(axis, dtype=float)
        axis /= np.linalg.norm(axis)
        aa = axis * angle
        mat = axis_angle_to_matrix(aa)
        quat = matrix_to_quaternion(mat)
        assert np.allclose(quaternion_to_matrix(quat), mat, atol=1e-10)


def test_shape_validation():
    with pytest.raises(MeshError):
        axis_angle_to_matrix(np.zeros((3, 4)))
    with pytest.raises(MeshError):
        quaternion_to_matrix(np.zeros((2, 3)))
    with pytest.raises(MeshError):
        matrix_to_quaternion(np.zeros((4, 4)))
