"""Tests of the signal pre-processing chain: windows, Butterworth
filtering, range/Doppler/angle FFTs and radar-cube construction."""

import numpy as np
import pytest

from repro.config import DspConfig, RadarConfig
from repro.dsp.fft import AngleProcessor, doppler_fft, range_fft, zoom_fft
from repro.dsp.filters import band_to_if_hz, hand_bandpass
from repro.dsp.radar_cube import CubeBuilder, RadarCube, segment_cube
from repro.dsp.windows import get_window
from repro.errors import SignalProcessingError
from repro.radar.antenna import iwr1443_array
from repro.radar.chirp import synthesize_frame
from repro.radar.scene import Scatterers


@pytest.fixture
def radar():
    return RadarConfig(noise_std=0.0)


@pytest.fixture
def dsp():
    return DspConfig()


def point(position, velocity=(0, 0, 0), amplitude=1.0):
    return Scatterers(
        positions=np.array([position], dtype=float),
        velocities=np.array([velocity], dtype=float),
        amplitudes=np.array([amplitude]),
    )


# ----------------------------------------------------------------------
# Windows
# ----------------------------------------------------------------------
def test_windows_available():
    for name in ("rect", "hann", "hamming", "blackman"):
        w = get_window(name, 32)
        assert w.shape == (32,)
        assert np.all(w >= -1e-12)


def test_hann_endpoints_zero():
    w = get_window("hann", 16)
    assert w[0] == pytest.approx(0.0, abs=1e-12)
    assert w[-1] == pytest.approx(0.0, abs=1e-12)


def test_window_length_one():
    assert np.allclose(get_window("hann", 1), [1.0])


def test_unknown_window():
    with pytest.raises(SignalProcessingError):
        get_window("kaiser", 8)
    with pytest.raises(SignalProcessingError):
        get_window("hann", 0)


# ----------------------------------------------------------------------
# Butterworth hand bandpass
# ----------------------------------------------------------------------
def test_band_to_if_conversion(radar):
    lo, hi = band_to_if_hz(radar, (0.1, 0.9))
    # f = 2 B r / (c Tc)
    assert lo == pytest.approx(
        2 * radar.bandwidth_hz * 0.1 / (299792458.0 * radar.chirp_duration_s)
    )
    assert hi > lo


def test_bandpass_keeps_hand_removes_body(radar, dsp):
    """A hand at 0.3 m passes; a body at 0.8 m (outside the hand band) is
    suppressed -- the paper's environmental-interference removal."""
    array = iwr1443_array(radar)
    hand = synthesize_frame(radar, array, point([0.3, 0, 0]))
    body = synthesize_frame(radar, array, point([0.8, 0, 0], amplitude=3.0))
    hand_out = hand_bandpass(hand, radar, dsp)
    body_out = hand_bandpass(body, radar, dsp)
    hand_kept = np.abs(hand_out).mean() / np.abs(hand).mean()
    body_kept = np.abs(body_out).mean() / np.abs(body).mean()
    assert hand_kept > 0.6
    assert body_kept < 0.25


def test_far_clutter_suppressed_by_antialiasing(radar, dsp):
    """A reflector at 1.5 m has a beat tone near Nyquist: the receive
    chain's anti-aliasing filter rolls it off before it can alias into
    the hand band."""
    array = iwr1443_array(radar)
    hand = synthesize_frame(radar, array, point([0.3, 0, 0]))
    far = synthesize_frame(radar, array, point([1.5, 0, 0], amplitude=1.0))
    # Compare at equal scatterer amplitude: the far return must be far
    # weaker than 1/r^2 alone would predict.
    ratio = np.abs(far).max() / np.abs(hand).max()
    assert ratio < (0.3 / 1.5) ** 2 * 0.5


def test_bandpass_validates_sample_count(radar, dsp):
    with pytest.raises(SignalProcessingError):
        hand_bandpass(np.zeros((12, 16, 10)), radar, dsp)


def test_band_to_if_validates(radar):
    with pytest.raises(SignalProcessingError):
        band_to_if_hz(radar, (0.5, 0.2))


# ----------------------------------------------------------------------
# FFT stages
# ----------------------------------------------------------------------
def test_range_fft_peak_at_true_range(radar, dsp):
    array = iwr1443_array(radar)
    data = synthesize_frame(radar, array, point([0.45, 0, 0]))
    spectrum = range_fft(data, radar, dsp)
    assert spectrum.shape[-1] == dsp.range_bins
    profile = np.abs(spectrum[0, 0])
    peak = np.argmax(profile)
    assert peak * radar.range_resolution_m == pytest.approx(0.45, abs=0.04)


def test_doppler_fft_zero_velocity_centre_bin(radar, dsp):
    array = iwr1443_array(radar)
    data = synthesize_frame(radar, array, point([0.4, 0, 0]))
    ranged = range_fft(data, radar, dsp)
    doppler = doppler_fft(ranged, radar, dsp, axis=1)
    assert doppler.shape[1] == dsp.doppler_bins
    # Static target: energy in the central Doppler bin.
    profile = np.abs(doppler[0]).sum(axis=1)
    assert np.argmax(profile) == dsp.doppler_bins // 2


def test_doppler_fft_moving_target_offset_bin(radar, dsp):
    array = iwr1443_array(radar)
    v = 2 * radar.velocity_resolution_mps
    data = synthesize_frame(
        radar, array, point([0.4, 0, 0], velocity=[-v, 0, 0])
    )
    ranged = range_fft(data, radar, dsp)
    doppler = doppler_fft(ranged, radar, dsp, axis=1)
    profile = np.abs(doppler[0]).sum(axis=1)
    # Negative radial velocity (approaching) -> bin below centre.
    assert np.argmax(profile) == dsp.doppler_bins // 2 - 2


def test_range_fft_validates(radar, dsp):
    with pytest.raises(SignalProcessingError):
        range_fft(np.zeros((12, 16, 10)), radar, dsp)
    big = DspConfig(range_bins=128)
    with pytest.raises(SignalProcessingError):
        range_fft(np.zeros((12, 16, 64)), radar, big)


def test_zoom_fft_matches_dft():
    rng = np.random.default_rng(0)
    signal = rng.normal(size=16) + 1j * rng.normal(size=16)
    out = zoom_fft(signal, (-0.5, 0.5 - 1 / 16), 16)
    reference = np.fft.fft(signal)
    # Our grid runs -0.5..0.4375, i.e. fftshifted order.
    assert np.allclose(out, np.fft.fftshift(reference), atol=1e-10)


def test_zoom_fft_refines_resolution():
    n = 8
    f0 = 0.17
    signal = np.exp(2j * np.pi * f0 * np.arange(n))
    fine = zoom_fft(signal, (0.1, 0.25), 64)
    peak = 0.1 + (0.25 - 0.1) * np.argmax(np.abs(fine)) / 63
    assert peak == pytest.approx(f0, abs=0.01)


def test_zoom_fft_validates():
    with pytest.raises(SignalProcessingError):
        zoom_fft(np.ones(8), (0.2, 0.9), 4)
    with pytest.raises(SignalProcessingError):
        zoom_fft(np.ones(8), (0.1, 0.2), 0)


# ----------------------------------------------------------------------
# Angle processing
# ----------------------------------------------------------------------
def test_angle_processor_finds_azimuth(radar, dsp):
    array = iwr1443_array(radar)
    processor = AngleProcessor(array, dsp)
    azimuth = np.radians(12.0)
    r = 0.4
    data = synthesize_frame(
        radar, array,
        point([r * np.cos(azimuth), r * np.sin(azimuth), 0.0]),
    )
    snapshot = data[:, 0, :1]  # (V, 1)
    az_spec, el_spec = processor.spectra(snapshot)
    peak = processor.azimuth_grid[np.argmax(az_spec[:, 0])]
    assert np.degrees(peak) == pytest.approx(12.0, abs=4.5)
    assert el_spec.shape[0] == dsp.elevation_bins


def test_angle_processor_finds_elevation(radar, dsp):
    array = iwr1443_array(radar)
    processor = AngleProcessor(array, dsp)
    elevation = np.radians(-15.0)
    r = 0.4
    data = synthesize_frame(
        radar, array,
        point([r * np.cos(elevation), 0.0, r * np.sin(elevation)]),
    )
    az_spec, el_spec = processor.spectra(data[:, 0, :1])
    peak = processor.elevation_grid[np.argmax(el_spec[:, 0])]
    assert np.degrees(peak) < 0


def test_zoom_ablation_repeats_rows(radar):
    dsp_zoom1 = DspConfig(zoom_factor=1)
    array = iwr1443_array(radar)
    processor = AngleProcessor(array, dsp_zoom1)
    # Half the grid evaluated, repeated to full size.
    assert len(processor.azimuth_grid) == dsp_zoom1.azimuth_bins // 2
    data = np.ones((12, 1), dtype=complex)
    az, el = processor.spectra(data)
    assert az.shape[0] == dsp_zoom1.azimuth_bins
    assert np.allclose(az[0::2], az[1::2])


def test_angle_processor_validates_antenna_axis(radar, dsp):
    processor = AngleProcessor(iwr1443_array(radar), dsp)
    with pytest.raises(SignalProcessingError):
        processor.spectra(np.ones((5, 3)))


# ----------------------------------------------------------------------
# Radar cube
# ----------------------------------------------------------------------
def test_cube_builder_shapes(radar, dsp):
    array = iwr1443_array(radar)
    builder = CubeBuilder(radar, dsp)
    frames = np.stack(
        [
            synthesize_frame(radar, array, point([0.35, 0.02, 0.0]))
            for _ in range(3)
        ]
    )
    cube = builder.build(frames)
    assert cube.values.shape == (
        3, dsp.doppler_bins, dsp.range_bins, dsp.angle_bins_total,
    )
    assert cube.num_frames == 3
    assert len(cube.range_axis_m) == dsp.range_bins


def test_cube_builder_accepts_single_frame(radar, dsp):
    array = iwr1443_array(radar)
    builder = CubeBuilder(radar, dsp)
    frame = synthesize_frame(radar, array, point([0.35, 0, 0]))
    cube = builder.build(frame)
    assert cube.values.shape[0] == 1


def test_cube_peak_at_hand_range(radar, dsp):
    builder = CubeBuilder(radar, dsp)
    array = iwr1443_array(radar)
    frame = synthesize_frame(radar, array, point([0.30, 0, 0]))
    cube = builder.build(frame)
    profile = cube.values[0].sum(axis=(0, 2))
    peak_range = cube.range_axis_m[np.argmax(profile)]
    assert peak_range == pytest.approx(0.30, abs=0.04)


def test_cube_values_non_negative(radar, dsp):
    builder = CubeBuilder(radar, dsp)
    array = iwr1443_array(radar)
    frame = synthesize_frame(radar, array, point([0.3, 0, 0]))
    cube = builder.build(frame)
    assert np.all(cube.values >= 0)  # log1p of magnitudes


def test_cube_builder_validates_antennas(radar, dsp):
    builder = CubeBuilder(radar, dsp)
    with pytest.raises(SignalProcessingError):
        builder.build(np.zeros((1, 5, 16, 64), dtype=complex))


def test_radar_cube_validates_axes():
    with pytest.raises(SignalProcessingError):
        RadarCube(
            values=np.zeros((1, 4, 8, 16)),
            range_axis_m=np.zeros(7),
            velocity_axis_mps=np.zeros(4),
            azimuth_axis_rad=np.zeros(8),
            elevation_axis_rad=np.zeros(8),
        )


def test_segment_cube_non_overlapping():
    values = np.zeros((10, 2, 3, 4))
    segments = segment_cube(values, 4)
    assert len(segments) == 2
    assert segments[0].shape == (4, 2, 3, 4)


def test_segment_cube_with_stride():
    values = np.arange(10)[:, None, None, None] * np.ones((10, 1, 1, 1))
    segments = segment_cube(values, 4, stride=2)
    assert len(segments) == 4
    assert segments[1][0, 0, 0, 0] == 2


def test_segment_cube_validates():
    with pytest.raises(SignalProcessingError):
        segment_cube(np.zeros((10, 2, 3)), 4)
    with pytest.raises(SignalProcessingError):
        segment_cube(np.zeros((10, 2, 3, 4)), 0)
