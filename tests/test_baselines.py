"""Tests of the comparison baselines (paper Table I)."""

import numpy as np
import pytest

from repro.baselines import (
    VISION_BASELINES,
    WIRELESS_REFERENCE,
    HandFiBaseline,
    Mm4ArmBaseline,
)
from repro.data.dataset import HandPoseDataset, SegmentMeta
from repro.errors import DatasetError, ModelError


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(0)
    n = 48
    labels = rng.normal(0.3, 0.05, size=(n, 21, 3)).astype(np.float32)
    # Give the features real correlation with the labels so the MLPs can
    # learn something.
    segments = np.zeros((n, 2, 4, 16, 16), dtype=np.float32)
    for i in range(n):
        x = labels[i, 0, 0]
        segments[i] += rng.normal(0, 0.1, size=segments[i].shape)
        bin_x = int(np.clip((x - 0.1) / 0.02, 0, 15))
        segments[i, :, :, bin_x, :] += 2.0
    return HandPoseDataset(
        segments=segments,
        labels=labels,
        true_joints=labels.copy(),
        meta=[SegmentMeta(user_id=1)] * n,
    )


def test_literature_tables_match_paper():
    methods = {r.method for r in VISION_BASELINES}
    assert methods == {"Cascade", "CrossingNet", "DeepPrior++", "HBE"}
    by_key = {(r.method, r.dataset): r.mpjpe_mm for r in VISION_BASELINES}
    assert by_key[("Cascade", "MSRA")] == 15.2
    assert by_key[("HBE", "ICVL")] == 8.62
    wireless = {r.method: r for r in WIRELESS_REFERENCE}
    assert wireless["mm4Arm"].mpjpe_mm == 4.07
    assert wireless["mm4Arm"].mmhand_paper_mm == 20.4
    assert wireless["HandFi"].mpjpe_mm == 20.7
    assert wireless["HandFi"].mmhand_paper_mm == 19.0


def test_mm4arm_features_collapse_angles(dataset):
    features = Mm4ArmBaseline.features(dataset.segments)
    assert features.shape == (len(dataset), 2 * 4 * 16)
    with pytest.raises(DatasetError):
        Mm4ArmBaseline.features(np.zeros((2, 3, 4)))


def test_handfi_features_downsample(dataset):
    baseline = HandFiBaseline(pooling=(4, 4))
    features = baseline.features(dataset.segments)
    assert features.shape == (len(dataset), 2 * 4 * 4 * 4)
    bad = HandFiBaseline(pooling=(5, 5))
    with pytest.raises(DatasetError):
        bad.features(dataset.segments)


def test_mm4arm_fit_predict_cycle(dataset):
    baseline = Mm4ArmBaseline(hidden=32)
    history = baseline.fit(dataset, epochs=80)
    assert history[-1] < history[0]
    pred = baseline.predict(dataset.segments)
    assert pred.shape == (len(dataset), 21, 3)
    err = np.linalg.norm(pred - dataset.labels, axis=2).mean()
    mean_err = np.linalg.norm(
        dataset.labels - dataset.labels.mean(axis=0), axis=2
    ).mean()
    assert err < mean_err  # beats the constant predictor on train data


def test_handfi_fit_predict_cycle(dataset):
    baseline = HandFiBaseline(hidden=32)
    baseline.fit(dataset, epochs=20)
    pred = baseline.predict(dataset.segments)
    assert pred.shape == (len(dataset), 21, 3)


def test_predict_before_fit_raises(dataset):
    with pytest.raises(ModelError):
        Mm4ArmBaseline().predict(dataset.segments)
    with pytest.raises(ModelError):
        HandFiBaseline().predict(dataset.segments)
