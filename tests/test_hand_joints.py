"""Tests of the 21-joint skeleton model topology."""

import pytest

from repro.hand.joints import (
    FINGER_CHAINS,
    FINGER_JOINTS,
    FINGERS,
    JOINT_NAMES,
    JOINT_PARENTS,
    NUM_JOINTS,
    PALM_JOINTS,
    PHALANGES,
    WRIST,
    finger_joint_indices,
    joint_index,
)


def test_joint_count_is_21():
    assert NUM_JOINTS == 21
    assert len(JOINT_NAMES) == 21
    assert len(JOINT_PARENTS) == 21


def test_wrist_is_root():
    assert JOINT_PARENTS[WRIST] == -1
    assert JOINT_NAMES[WRIST] == "wrist"


def test_every_finger_has_four_chain_joints():
    assert set(FINGER_CHAINS) == set(FINGERS)
    seen = set()
    for chain in FINGER_CHAINS.values():
        assert len(chain) == 4
        seen.update(chain)
    assert seen == set(range(1, 21))


def test_finger_roots_attach_to_wrist():
    for chain in FINGER_CHAINS.values():
        assert JOINT_PARENTS[chain[0]] == WRIST
        for parent, child in zip(chain, chain[1:]):
            assert JOINT_PARENTS[child] == parent


def test_palm_and_finger_joints_partition_the_hand():
    assert set(PALM_JOINTS) | set(FINGER_JOINTS) == set(range(NUM_JOINTS))
    assert not set(PALM_JOINTS) & set(FINGER_JOINTS)
    # Palm = wrist + five finger roots.
    assert len(PALM_JOINTS) == 6
    assert WRIST in PALM_JOINTS


def test_phalanges_cover_every_non_root_joint():
    assert len(PHALANGES) == 20
    children = {child for _, child in PHALANGES}
    assert children == set(range(1, 21))
    for parent, child in PHALANGES:
        assert JOINT_PARENTS[child] == parent


def test_joint_index_round_trips_names():
    for i, name in enumerate(JOINT_NAMES):
        assert joint_index(name) == i


def test_joint_index_rejects_unknown_name():
    with pytest.raises(KeyError):
        joint_index("elbow")


def test_finger_joint_indices():
    assert finger_joint_indices("index") == [5, 6, 7, 8]
    with pytest.raises(KeyError):
        finger_joint_indices("toe")
