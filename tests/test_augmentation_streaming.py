"""Tests of data augmentation and the streaming estimator."""

import numpy as np
import pytest

from repro.config import (
    CampaignConfig,
    DspConfig,
    ModelConfig,
    RadarConfig,
    TrainConfig,
)
from repro.core.regressor import HandJointRegressor
from repro.core.streaming import StreamingEstimator
from repro.core.training import Trainer
from repro.data.augmentation import AugmentationConfig, augment_batch
from repro.data.collection import CampaignGenerator
from repro.dsp.radar_cube import CubeBuilder
from repro.errors import DatasetError, ReproError
from repro.hand.subjects import make_subjects


@pytest.fixture
def batch():
    rng = np.random.default_rng(0)
    segments = np.abs(
        rng.normal(size=(4, 2, 4, 16, 16))
    ).astype(np.float32)
    labels = rng.normal(0.3, 0.05, size=(4, 21, 3)).astype(np.float32)
    return segments, labels


# ----------------------------------------------------------------------
# Augmentation
# ----------------------------------------------------------------------
def test_augment_preserves_shapes(batch):
    segments, labels = batch
    out_x, out_y = augment_batch(
        segments, labels, np.random.default_rng(1)
    )
    assert out_x.shape == segments.shape
    assert out_y.shape == labels.shape
    # Inputs untouched.
    assert np.array_equal(labels, batch[1])


def test_augment_disabled_is_identity(batch):
    segments, labels = batch
    config = AugmentationConfig(
        gain_std=0.0, noise_std=0.0, range_shift_bins=0,
        frame_dropout_prob=0.0,
    )
    out_x, out_y = augment_batch(
        segments, labels, np.random.default_rng(1), config
    )
    assert np.allclose(out_x, segments)
    assert np.allclose(out_y, labels)


def test_augment_range_shift_moves_labels(batch):
    segments, labels = batch
    config = AugmentationConfig(
        gain_std=0.0, noise_std=0.0, range_shift_bins=2,
        frame_dropout_prob=0.0, range_resolution_m=0.0375,
    )
    rng = np.random.default_rng(3)
    out_x, out_y = augment_batch(segments, labels, rng, config)
    # Label x-shift must be a multiple of the range resolution and match
    # the cube roll.
    deltas = (out_y - labels)[:, 0, 0] / 0.0375
    assert np.allclose(deltas, np.round(deltas), atol=1e-4)
    assert np.abs(deltas).max() <= 2 + 1e-6
    # y/z coordinates untouched.
    assert np.allclose(out_y[:, :, 1:], labels[:, :, 1:])


def test_augment_output_non_negative(batch):
    segments, labels = batch
    out_x, _ = augment_batch(
        segments, labels, np.random.default_rng(2),
        AugmentationConfig(noise_std=0.5),
    )
    assert np.all(out_x >= 0)


def test_augment_validates(batch):
    segments, labels = batch
    with pytest.raises(DatasetError):
        augment_batch(segments[:, 0], labels, np.random.default_rng(0))
    with pytest.raises(DatasetError):
        augment_batch(segments, labels[:2], np.random.default_rng(0))
    with pytest.raises(DatasetError):
        AugmentationConfig(gain_std=-0.1)
    with pytest.raises(DatasetError):
        AugmentationConfig(frame_dropout_prob=1.0)


# ----------------------------------------------------------------------
# Streaming
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def streaming_setup():
    radar = RadarConfig(samples_per_chirp=32, chirp_loops=8)
    dsp = DspConfig(
        range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
        segment_frames=2,
    )
    model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
        lstm_hidden=16,
    )
    generator = CampaignGenerator(
        radar, dsp, CampaignConfig(num_users=1, segments_per_user=8)
    )
    dataset = generator.generate(subjects=make_subjects(1), seed=13)
    regressor = HandJointRegressor(dsp, model)
    Trainer(regressor, TrainConfig(epochs=1, batch_size=4)).fit(dataset)
    builder = CubeBuilder(radar, dsp)
    return radar, dsp, builder, regressor


def _raw_frames(radar, count):
    from repro.hand.gestures import gesture_pose
    from repro.radar.radar import RadarSimulator
    from repro.radar.scatterers import hand_scatterers
    from repro.radar.scene import Scene
    from repro.hand.shape import HandShape

    sim = RadarSimulator(radar, seed=5)
    pose = gesture_pose(
        "open_palm", wrist_position=np.array([0.3, 0.0, 0.0])
    )
    scene = Scene(
        hand=hand_scatterers(
            HandShape(), pose, rng=np.random.default_rng(1)
        )
    )
    return sim.sequence([scene] * count)


def test_streaming_emits_after_window_fill(streaming_setup):
    radar, dsp, builder, regressor = streaming_setup
    estimator = StreamingEstimator(builder, regressor, hop_frames=1)
    raw = _raw_frames(radar, 5)
    outputs = estimator.run(raw)
    # Window of 2: first emission at frame 1, then every frame.
    assert len(outputs) == 4
    assert outputs[0].frame_index == 1
    assert outputs[0].skeleton.shape == (21, 3)
    assert outputs[0].mesh is None


def test_streaming_hop_controls_rate(streaming_setup):
    radar, dsp, builder, regressor = streaming_setup
    estimator = StreamingEstimator(builder, regressor, hop_frames=2)
    raw = _raw_frames(radar, 6)
    outputs = estimator.run(raw)
    assert len(outputs) == 3
    assert [o.frame_index for o in outputs] == [1, 3, 5]


def test_streaming_reset(streaming_setup):
    radar, dsp, builder, regressor = streaming_setup
    estimator = StreamingEstimator(builder, regressor)
    raw = _raw_frames(radar, 3)
    estimator.run(raw)
    estimator.reset()
    assert estimator.window_fill == 0
    outputs = estimator.run(raw)
    assert outputs[0].frame_index == 1


def test_streaming_validates(streaming_setup):
    radar, dsp, builder, regressor = streaming_setup
    with pytest.raises(ReproError):
        StreamingEstimator(builder, regressor, hop_frames=0)
    estimator = StreamingEstimator(builder, regressor)
    with pytest.raises(ReproError):
        estimator.push(np.zeros((2, 3), dtype=complex))
    with pytest.raises(ReproError):
        estimator.run(np.zeros((2, 3, 4), dtype=complex))


def test_streaming_matches_batch_pipeline(streaming_setup):
    """Streaming with hop = segment length reproduces the batch
    pipeline's segmentation exactly."""
    radar, dsp, builder, regressor = streaming_setup
    raw = _raw_frames(radar, 4)

    estimator = StreamingEstimator(
        builder, regressor, hop_frames=dsp.segment_frames
    )
    stream_out = estimator.run(raw)

    from repro.dsp.radar_cube import segment_cube

    cube = builder.build(raw)
    segments = np.stack(segment_cube(cube.values, dsp.segment_frames))
    batch_pred = regressor.predict(segments)
    # Streaming emits at the end of each segment; note the streaming
    # window covers the same frames as the batch segmentation here.
    assert len(stream_out) == len(batch_pred)
    for out, ref in zip(stream_out, batch_pred):
        assert np.allclose(out.skeleton, ref, atol=1e-5)


def test_trainer_with_augmentation(streaming_setup):
    """The Trainer accepts an AugmentationConfig and still learns."""
    radar, dsp, builder, _ = streaming_setup
    model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
        lstm_hidden=16,
    )
    generator = CampaignGenerator(
        radar, dsp, CampaignConfig(num_users=1, segments_per_user=10)
    )
    dataset = generator.generate(subjects=make_subjects(1), seed=17)
    regressor = HandJointRegressor(dsp, model)
    trainer = Trainer(
        regressor,
        TrainConfig(epochs=2, batch_size=4),
        augmentation=AugmentationConfig(
            range_resolution_m=radar.range_resolution_m
        ),
    )
    result = trainer.fit(dataset)
    assert result.epochs == 2
    pred = trainer.predict(dataset)
    assert np.isfinite(pred).all()
