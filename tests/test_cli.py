"""Tests of the command-line interface (all subcommands exercised with
tiny configurations via monkeypatched defaults)."""

import numpy as np
import pytest

from repro import cli
from repro.config import CampaignConfig, DspConfig, ModelConfig, RadarConfig


@pytest.fixture(autouse=True)
def small_defaults(monkeypatch):
    """Shrink the CLI's default radar/model so tests stay fast."""
    small_radar = RadarConfig(samples_per_chirp=32, chirp_loops=8)
    small_dsp = DspConfig(
        range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
        segment_frames=2,
    )
    small_model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
        lstm_hidden=16,
    )
    import repro.config as config_module

    monkeypatch.setattr(config_module, "RadarConfig",
                        lambda **kw: small_radar)
    monkeypatch.setattr(config_module, "DspConfig", lambda **kw: small_dsp)
    monkeypatch.setattr(config_module, "ModelConfig",
                        lambda **kw: small_model)
    # Re-point the default-constructed classes used inside the CLI path.
    import repro.data.collection as collection
    import repro.core.regressor as regressor_module
    import repro.core.pipeline as pipeline_module

    original_generator = collection.CampaignGenerator

    def patched_generator(radar=None, dsp=None, campaign=None, **kw):
        return original_generator(
            small_radar, small_dsp, campaign, **kw
        )

    monkeypatch.setattr(collection, "CampaignGenerator", patched_generator)
    original_regressor = regressor_module.HandJointRegressor

    def patched_regressor(dsp=None, model=None, seed=0):
        return original_regressor(small_dsp, small_model, seed=seed)

    monkeypatch.setattr(
        regressor_module, "HandJointRegressor", patched_regressor
    )
    yield


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        cli.build_parser().parse_args([])


def test_generate_train_evaluate_cycle(tmp_path, capsys):
    dataset_path = str(tmp_path / "data.npz")
    weights_path = str(tmp_path / "weights.npz")

    assert cli.main(
        [
            "generate-data", dataset_path,
            "--users", "2", "--segments-per-user", "8", "--seed", "3",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "wrote 16 segments" in out

    assert cli.main(
        [
            "train", dataset_path, weights_path,
            "--epochs", "1", "--batch-size", "4",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "weights ->" in out

    assert cli.main(["evaluate", dataset_path, weights_path]) == 0
    out = capsys.readouterr().out
    assert "MPJPE" in out
    assert "overall" in out


def test_evaluate_single_user(tmp_path, capsys):
    dataset_path = str(tmp_path / "data.npz")
    weights_path = str(tmp_path / "weights.npz")
    cli.main(["generate-data", dataset_path, "--users", "2",
              "--segments-per-user", "6"])
    cli.main(["train", dataset_path, weights_path, "--epochs", "1",
              "--batch-size", "4"])
    capsys.readouterr()
    assert cli.main(
        ["evaluate", dataset_path, weights_path, "--user", "1"]
    ) == 0
    assert cli.main(
        ["evaluate", dataset_path, weights_path, "--user", "99"]
    ) == 1


def test_generate_with_condition(tmp_path, capsys):
    dataset_path = str(tmp_path / "gloved.npz")
    assert cli.main(
        [
            "generate-data", dataset_path,
            "--users", "1", "--segments-per-user", "4",
            "--environment", "lab", "--glove", "silk",
            "--distance", "0.35",
        ]
    ) == 0
    from repro.data.dataset import HandPoseDataset

    dataset = HandPoseDataset.load(dataset_path)
    assert all(m.environment == "lab" for m in dataset.meta)
    assert all(m.condition == "glove:silk" for m in dataset.meta)


def test_export_mesh(tmp_path, capsys):
    prefix = str(tmp_path / "hand")
    assert cli.main(
        ["export-mesh", "fist", prefix, "--fit-steps", "10"]
    ) == 0
    assert (tmp_path / "hand.obj").exists()
    assert (tmp_path / "hand.svg").exists()


def test_export_mesh_unknown_gesture(tmp_path, capsys):
    assert cli.main(
        ["export-mesh", "spock", str(tmp_path / "x")]
    ) == 1
    assert "unknown gesture" in capsys.readouterr().err


def test_serve_help(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["serve", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--sessions" in out
    assert "--policy" in out


def test_serve_bounded_run(tmp_path, capsys):
    """A short multi-client run completes and writes a stats snapshot."""
    json_path = tmp_path / "serve.json"
    assert cli.main(
        [
            "serve", "--sessions", "2", "--frames", "4",
            "--batch-size", "2", "--report-every", "2",
            "--json", str(json_path),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "final report" in out
    assert "event=final_report" in out
    assert "poses_per_s=" in out
    assert "event=plan_cache" in out
    import json

    stats = json.loads(json_path.read_text())
    # 2 clients x 4 frames, window of 2, hop 1 -> 3 poses per client.
    assert stats["counters"]["frames_in"] == 8
    assert stats["counters"]["poses"] == 6
    assert stats["counters"]["sessions_closed"] == 2
    assert stats["histograms"]["latency_s"]["count"] == 6
    assert stats["plan_cache"]["misses"] >= 1


def test_bench_smoke(tmp_path, capsys):
    """The bench subcommand runs the smoke workload and writes JSON."""
    json_path = tmp_path / "bench.json"
    assert cli.main(
        ["bench", "--smoke", "--json", str(json_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "cube build" in out
    assert "plan cache" in out
    import json

    summary = json.loads(json_path.read_text())
    assert summary["smoke"] is True
    assert summary["cube_build"]["batched_exact"][
        "max_abs_diff_vs_reference"
    ] <= 1e-9
    assert summary["cfar"]["vectorized"]["mask_identical"] is True


def test_bench_rejects_bad_repeats(capsys):
    assert cli.main(["bench", "--smoke", "--repeats", "0"]) == 1
    assert "--repeats" in capsys.readouterr().err


def test_trace_wrapper_runs_bench(tmp_path, capsys):
    """``mmhand trace bench --smoke --trace-out`` produces a span
    summary and a Chrome-loadable trace with nested spans covering
    radar synthesis, the DSP stages, and the model forward."""
    import json

    trace_path = tmp_path / "trace.json"
    json_path = tmp_path / "bench.json"
    assert cli.main(
        [
            "trace", "bench", "--smoke",
            "--json", str(json_path),
            "--trace-out", str(trace_path),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "span summary" in out

    doc = json.loads(trace_path.read_text())
    events = doc["traceEvents"]
    names = {event["name"] for event in events}
    assert "radar.synthesize.sequence" in names
    dsp_stages = {
        n for n in names
        if n in ("dsp.bandpass", "dsp.range_fft", "dsp.doppler_fft",
                 "dsp.angle")
    }
    assert len(dsp_stages) >= 3
    assert "model.forward" in names
    assert any(event["args"].get("parent_id") for event in events)
    assert all(
        event["ph"] == "X" and "ts" in event and "dur" in event
        for event in events
    )


def test_trace_wrapper_requires_command(capsys):
    assert cli.main(["trace"]) == 1
    assert "missing command" in capsys.readouterr().err


def test_bench_provenance(tmp_path, capsys):
    """Every bench JSON embeds reproducibility provenance."""
    import json

    json_path = tmp_path / "bench.json"
    assert cli.main(
        ["bench", "--smoke", "--json", str(json_path)]
    ) == 0
    summary = json.loads(json_path.read_text())
    provenance = summary["provenance"]
    for key in ("git_sha", "platform", "python", "numpy",
                "timestamp_utc", "config_hash"):
        assert provenance[key]


def test_profile_wrapper_runs_command(tmp_path, capsys):
    """``mmhand profile <cmd>`` runs the wrapped command under the
    sampling profiler and writes a non-empty folded-stack profile."""
    out_path = tmp_path / "profile.folded"
    json_path = tmp_path / "bench.json"
    assert cli.main(
        [
            "profile", "--hz", "250", "--out", str(out_path),
            "bench", "--smoke", "--model-only",
            "--json", str(json_path),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "--- profile ---" in out
    assert "overhead" in out
    folded = out_path.read_text().strip().splitlines()
    assert folded
    stack, count = folded[0].rsplit(" ", 1)
    assert int(count) >= 1
    assert ";" in stack  # thread root + at least one frame


def test_profile_wrapper_requires_command(capsys):
    assert cli.main(["profile"]) == 1
    assert "missing command" in capsys.readouterr().err
    assert cli.main(["profile", "profile", "bench"]) == 1
    assert "cannot nest" in capsys.readouterr().err


def test_bench_compare_passes_against_self(tmp_path, capsys):
    """A benchmark compared against itself always passes; a doctored
    regression fails with a non-zero exit."""
    import json

    json_path = tmp_path / "bench_model.json"
    assert cli.main(
        [
            "bench", "--smoke", "--model-only",
            "--model-json", str(json_path),
        ]
    ) == 0
    capsys.readouterr()
    assert cli.main(
        ["bench-compare", str(json_path), str(json_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "0 failed" in out

    doctored = json.loads(json_path.read_text())
    doctored["within_tolerance"] = False
    bad_path = tmp_path / "doctored.json"
    bad_path.write_text(json.dumps(doctored))
    assert cli.main(
        ["bench-compare", str(bad_path), str(json_path)]
    ) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out


def test_bench_compare_rejects_type_mismatch(tmp_path, capsys):
    import json

    model_like = tmp_path / "model.json"
    model_like.write_text(json.dumps({"within_tolerance": True}))
    pipeline_like = tmp_path / "pipeline.json"
    pipeline_like.write_text(json.dumps({"cube_build": {}}))
    assert cli.main(
        ["bench-compare", str(model_like), str(pipeline_like)]
    ) == 1
    assert "mismatch" in capsys.readouterr().err
    assert cli.main(
        ["bench-compare", str(model_like), str(tmp_path / "nope.json")]
    ) == 1
    assert "cannot read" in capsys.readouterr().err
