"""Chaos tests: the serving stack and the trainer under injected faults.

The serving smoke test is the acceptance drill from DESIGN.md
"Resilience": with frames corrupted, forward passes failing and the
compiled plan forced broken, every *clean* request must still complete
with the same pose it would get on a fault-free server, the service
must report degraded health, and the breaker must have tripped the
compiled path down to the eager forward. The trainer test kills a fit
mid-epoch and proves the checkpoint/resume path is bit-identical.
"""

import numpy as np
import pytest

from repro.config import (
    CampaignConfig,
    DspConfig,
    ModelConfig,
    RadarConfig,
    TrainConfig,
)
from repro.core.regressor import HandJointRegressor
from repro.core.training import Trainer
from repro.data.collection import CampaignGenerator
from repro.dsp.radar_cube import CubeBuilder
from repro.errors import InjectedFaultError
from repro.hand.subjects import make_subjects
from repro.resilience import FaultInjector, HealthState, latest_checkpoint
from repro.serving import InferenceServer, ServingConfig


@pytest.fixture(scope="module")
def stack():
    radar = RadarConfig(samples_per_chirp=32, chirp_loops=8)
    dsp = DspConfig(
        range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
        segment_frames=2,
    )
    model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
        lstm_hidden=16,
    )
    builder = CubeBuilder(radar, dsp)
    regressor = HandJointRegressor(dsp, model, seed=7)
    regressor.eval()
    return builder, regressor


def _client_frames(builder, clients, count, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(
        size=(
            clients,
            count,
            builder.array.num_virtual,
            builder.radar.chirp_loops,
            builder.radar.samples_per_chirp,
        )
    )


def _run(server, session_ids, frames, corrupt=None):
    """Feed ``frames[client, tick]`` through ``server``; returns
    ``{(session_id, frame_index): joints}``. ``corrupt`` maps
    ``(client, tick)`` to a replacement frame (``None`` drops it)."""
    results = {}
    clients, ticks = frames.shape[:2]
    for tick in range(ticks):
        for client in range(clients):
            frame = frames[client, tick]
            if corrupt is not None:
                if (client, tick) in corrupt:
                    frame = corrupt[(client, tick)]
                    if frame is None:
                        continue
            server.submit(session_ids[client], frame)
        for result in server.step():
            results[(result.session_id, result.frame_index)] = result
    for result in server.drain():
        results[(result.session_id, result.frame_index)] = result
    return results


class TestChaosServing:
    CLIENTS = 3
    TICKS = 12

    def test_clean_requests_survive_injected_faults(self, stack):
        """10% corrupted frames + 5% forward faults + a broken compiled
        plan: the dirty frames are quarantined, everything else is
        served bit-for-bit like a fault-free run (within compiled/eager
        tolerance), and the degradation is visible in health/stats."""
        builder, regressor = stack
        frames = _client_frames(builder, self.CLIENTS, self.TICKS, seed=3)

        # One injector corrupts frames at the feed (driven by the test,
        # exactly like `mmhand serve --chaos`); a second one, inside the
        # server, fails forwards and breaks the compiled plan. Separate
        # streams keep the corruption schedule replayable below.
        frame_faults = FaultInjector(frame_corrupt_rate=0.1, seed=21)
        corrupt = {}
        for tick in range(self.TICKS):
            for client in range(self.CLIENTS):
                mutated, kind = frame_faults.corrupt_frame(
                    frames[client, tick]
                )
                if kind is not None:
                    corrupt[(client, tick)] = mutated
        assert corrupt, "seed must corrupt at least one frame"
        assert any(f is not None for f in corrupt.values())

        chaos = InferenceServer(
            builder, regressor,
            ServingConfig(policy="block"),
            fault_injector=FaultInjector(
                forward_fail_rate=0.05, compile_fail=True, seed=22
            ),
        )
        ids = [
            chaos.open_session(f"client-{i}") for i in range(self.CLIENTS)
        ]
        served = _run(chaos, ids, frames, corrupt=corrupt)

        # Fault-free baseline over the *clean* frames only (a corrupted
        # frame never reaches the window, so the admitted stream -- and
        # every emitted window -- is identical in both runs).
        baseline = InferenceServer(
            builder, regressor, ServingConfig(policy="block")
        )
        base_ids = [
            baseline.open_session(f"client-{i}")
            for i in range(self.CLIENTS)
        ]
        dropped = {key: None for key in corrupt}
        expected = _run(baseline, base_ids, frames, corrupt=dropped)

        # Every clean request completed, with the right shape and the
        # fault-free pose (compiled vs eager may differ in the last ulp).
        assert set(served) == set(expected)
        assert len(served) > 0
        joints = regressor.model_config.num_joints
        for key, result in served.items():
            assert result.joints.shape == (joints, 3)
            assert np.all(np.isfinite(result.joints))
            np.testing.assert_allclose(
                result.joints, expected[key].joints, atol=1e-5
            )

        # The damage is visible: quarantined frames in the dead-letter
        # log, a tripped breaker, degraded health.
        assert len(chaos.dead_letters) > 0
        assert chaos.health() in (
            HealthState.DEGRADED, HealthState.UNHEALTHY
        )
        stats = chaos.stats()
        assert stats["health"] != "healthy"
        assert stats["counters"]["frames_quarantined"] > 0
        assert stats["breaker"]["state"] == "open"
        assert stats["counters"]["compiled_fallbacks"] >= 3
        assert stats["counters"]["eager_batches"] >= 1
        assert stats["dead_letters"]["total"] == len(
            [f for f in corrupt.values() if f is not None]
        )

        # The baseline stayed pristine.
        assert baseline.health() is HealthState.HEALTHY
        assert len(baseline.dead_letters) == 0
        assert baseline.breaker.state == "closed"


class KillAt:
    """Fault injector stand-in that raises on the N-th training batch."""

    def __init__(self, batch_index):
        self.batch_index = batch_index
        self.calls = 0

    def maybe_kill_batch(self):
        if self.calls == self.batch_index:
            raise InjectedFaultError(
                f"injected crash at batch {self.calls}"
            )
        self.calls += 1


@pytest.fixture(scope="module")
def train_setup():
    radar = RadarConfig(samples_per_chirp=32, chirp_loops=8)
    dsp = DspConfig(
        range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
        segment_frames=2,
    )
    model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
        lstm_hidden=16,
    )
    campaign = CampaignConfig(num_users=2, segments_per_user=10)
    dataset = CampaignGenerator(radar, dsp, campaign).generate(
        subjects=make_subjects(2), seed=5
    )
    return dsp, model, dataset


class TestCheckpointResume:
    CONFIG = dict(epochs=4, batch_size=4, seed=0, log_every=1000)

    def test_kill_mid_epoch_resume_is_bit_identical(
        self, train_setup, tmp_path
    ):
        """Crash during epoch 3, resume from the epoch-2 checkpoint,
        and land on exactly the run an uninterrupted fit produces."""
        dsp, model, dataset = train_setup

        # Reference: one uninterrupted fit.
        reference = HandJointRegressor(dsp, model, seed=3)
        result_ref = Trainer(reference, TrainConfig(**self.CONFIG)).fit(
            dataset
        )

        # Crash: same config, checkpoint every epoch, die mid-epoch 3
        # (20 segments / batch 4 = 5 batches per epoch; batch 13 is the
        # 4th batch of the 3rd epoch).
        crashed = HandJointRegressor(dsp, model, seed=3)
        with pytest.raises(InjectedFaultError):
            Trainer(crashed, TrainConfig(**self.CONFIG)).fit(
                dataset,
                checkpoint_dir=str(tmp_path),
                fault_injector=KillAt(13),
            )
        resume_path = latest_checkpoint(tmp_path)
        assert resume_path is not None
        assert resume_path.endswith("ckpt-epoch0002.npz")

        # Resume into a *fresh* process-equivalent: new model object,
        # new trainer, same config.
        resumed = HandJointRegressor(dsp, model, seed=3)
        result_res = Trainer(resumed, TrainConfig(**self.CONFIG)).fit(
            dataset,
            checkpoint_dir=str(tmp_path),
            resume_from=resume_path,
        )

        assert result_res.epochs == result_ref.epochs
        assert result_res.total_loss == result_ref.total_loss
        assert result_res.l3d == result_ref.l3d
        assert result_res.lkine == result_ref.lkine
        assert result_res.final_loss == result_ref.final_loss
        assert len(result_res.epoch_stats) == len(result_ref.epoch_stats)
        for stats_res, stats_ref in zip(
            result_res.epoch_stats, result_ref.epoch_stats
        ):
            # Timings differ between runs; the arithmetic must not.
            for key in ("epoch", "loss", "grad_norm"):
                assert stats_res[key] == stats_ref[key], key
        state_res = resumed.state_dict()
        state_ref = reference.state_dict()
        assert set(state_res) == set(state_ref)
        for key in state_ref:
            assert np.array_equal(state_res[key], state_ref[key]), key

    def test_resume_rejects_mismatched_seed(self, train_setup, tmp_path):
        dsp, model, dataset = train_setup
        trainer = Trainer(
            HandJointRegressor(dsp, model, seed=3),
            TrainConfig(epochs=1, batch_size=4, seed=0, log_every=1000),
        )
        trainer.fit(dataset, checkpoint_dir=str(tmp_path))
        other = Trainer(
            HandJointRegressor(dsp, model, seed=3),
            TrainConfig(epochs=1, batch_size=4, seed=9, log_every=1000),
        )
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            other.fit(
                dataset, resume_from=latest_checkpoint(tmp_path)
            )


@pytest.fixture(scope="module")
def campaign_setup(tmp_path_factory):
    """A tiny sharded campaign for the data-parallel chaos drills."""
    from repro.campaign import generate_campaign

    radar = RadarConfig(samples_per_chirp=32, chirp_loops=8)
    dsp = DspConfig(
        range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
        segment_frames=2,
    )
    model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
        lstm_hidden=16,
    )
    directory = tmp_path_factory.mktemp("chaos-campaign")
    generate_campaign(
        str(directory), num_shards=2, segments_per_shard=6,
        radar=radar, dsp=dsp,
        campaign=CampaignConfig(num_users=2, segments_per_user=6),
        seed=17, workers=1,
    )
    return dsp, model, str(directory)


class TestCampaignCheckpointResume:
    """Kill a data-parallel campaign fit mid-flight; resume must land
    bit-identically on the uninterrupted run -- including when the
    resumed run switches between sequential and forked execution."""

    CONFIG = dict(epochs=3, batch_size=2, seed=0, log_every=1000)

    def _fit(self, setup, processes, **kwargs):
        from repro.campaign import (
            DataParallelConfig,
            ShardedDataset,
            fit_data_parallel,
        )

        dsp, model, directory = setup
        regressor = HandJointRegressor(dsp, model, seed=3)
        result = fit_data_parallel(
            regressor,
            ShardedDataset(directory),
            TrainConfig(**self.CONFIG),
            DataParallelConfig(world_size=2, processes=processes),
            **kwargs,
        )
        return regressor, result

    @pytest.mark.parametrize("resume_processes", [1, 2])
    def test_kill_and_resume_is_bit_identical(
        self, campaign_setup, tmp_path, resume_processes
    ):
        from repro.resilience import latest_checkpoint

        reference_reg, reference = self._fit(campaign_setup, processes=1)

        # 2 shards x 6 segments -> 3 segments/rank-epoch at batch 2 is
        # 3 steps/epoch after the min() floor; kill in epoch 3.
        ckpt_dir = tmp_path / f"ckpt-{resume_processes}"
        with pytest.raises(InjectedFaultError):
            self._fit(
                campaign_setup, processes=1,
                checkpoint_dir=str(ckpt_dir),
                fault_injector=KillAt(7),
            )
        resume_path = latest_checkpoint(str(ckpt_dir))
        assert resume_path is not None
        assert resume_path.endswith("ckpt-epoch0002.npz")

        resumed_reg, resumed = self._fit(
            campaign_setup, processes=resume_processes,
            checkpoint_dir=str(ckpt_dir),
            resume_from=resume_path,
        )

        assert resumed.epochs == reference.epochs
        assert resumed.total_loss == reference.total_loss
        assert resumed.l3d == reference.l3d
        assert resumed.lkine == reference.lkine
        state_res = resumed_reg.state_dict()
        state_ref = reference_reg.state_dict()
        assert set(state_res) == set(state_ref)
        for key in state_ref:
            if resume_processes != 1 and "running_" in key:
                # Forked ranks only forward their own micro-batch
                # stream, so batch-norm running buffers (not trained
                # parameters) differ from the sequential reference.
                continue
            assert np.array_equal(state_res[key], state_ref[key]), key

    def test_resume_rejects_world_size_change(
        self, campaign_setup, tmp_path
    ):
        from repro.campaign import (
            DataParallelConfig,
            ShardedDataset,
            fit_data_parallel,
        )
        from repro.errors import CheckpointError
        from repro.resilience import latest_checkpoint

        dsp, model, directory = campaign_setup
        self._fit(
            campaign_setup, processes=1, checkpoint_dir=str(tmp_path)
        )
        with pytest.raises(CheckpointError, match="world_size"):
            fit_data_parallel(
                HandJointRegressor(dsp, model, seed=3),
                ShardedDataset(directory),
                TrainConfig(**self.CONFIG),
                DataParallelConfig(world_size=1, processes=1),
                resume_from=latest_checkpoint(str(tmp_path)),
            )

    def test_plain_trainer_checkpoint_is_rejected(
        self, campaign_setup, train_setup, tmp_path
    ):
        from repro.errors import CheckpointError
        from repro.resilience import latest_checkpoint

        dsp, model, dataset = train_setup
        Trainer(
            HandJointRegressor(dsp, model, seed=3),
            TrainConfig(epochs=1, batch_size=4, seed=0, log_every=1000),
        ).fit(dataset, checkpoint_dir=str(tmp_path))
        with pytest.raises(CheckpointError, match="campaign"):
            self._fit(
                campaign_setup, processes=1,
                resume_from=latest_checkpoint(str(tmp_path)),
            )
