"""Tests of the trainer, cross-validation and the end-to-end pipeline."""

import numpy as np
import pytest

from repro.config import (
    CampaignConfig,
    DspConfig,
    ModelConfig,
    RadarConfig,
    SystemConfig,
    TrainConfig,
)
from repro.core.mesh_recovery import MeshReconstructor
from repro.core.pipeline import MmHand, PipelineTiming
from repro.core.regressor import HandJointRegressor
from repro.core.training import Trainer, kfold_by_user
from repro.data.collection import CampaignGenerator, CaptureOptions
from repro.data.dataset import HandPoseDataset, SegmentMeta
from repro.errors import DatasetError, ReproError
from repro.hand.subjects import make_subjects


@pytest.fixture(scope="module")
def small_setup():
    radar = RadarConfig(samples_per_chirp=32, chirp_loops=8)
    dsp = DspConfig(
        range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
        segment_frames=2,
    )
    model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
        lstm_hidden=16,
    )
    campaign = CampaignConfig(num_users=2, segments_per_user=10)
    generator = CampaignGenerator(radar, dsp, campaign)
    dataset = generator.generate(subjects=make_subjects(2), seed=5)
    return radar, dsp, model, generator, dataset


def test_trainer_reduces_training_error(small_setup):
    """After fitting, MPJPE on the training data beats the label-mean
    predictor the untrained network effectively starts from."""
    _, dsp, model, _, dataset = small_setup
    regressor = HandJointRegressor(dsp, model)
    trainer = Trainer(
        regressor, TrainConfig(epochs=10, batch_size=4, seed=0)
    )
    result = trainer.fit(dataset)
    assert result.epochs == 10
    assert result.elapsed_s > 0
    assert result.final_loss == result.total_loss[-1]
    pred = trainer.predict(dataset)
    fitted_err = np.linalg.norm(pred - dataset.labels, axis=2).mean()
    mean_predictor = np.broadcast_to(
        dataset.labels.mean(axis=0), dataset.labels.shape
    )
    baseline_err = np.linalg.norm(
        mean_predictor - dataset.labels, axis=2
    ).mean()
    assert fitted_err < baseline_err


def test_trainer_rejects_tiny_dataset(small_setup):
    _, dsp, model, _, dataset = small_setup
    regressor = HandJointRegressor(dsp, model)
    trainer = Trainer(regressor, TrainConfig(batch_size=64))
    with pytest.raises(DatasetError):
        trainer.fit(dataset)


def test_trainer_fits_normalization(small_setup):
    _, dsp, model, _, dataset = small_setup
    regressor = HandJointRegressor(dsp, model)
    Trainer(regressor, TrainConfig(epochs=1, batch_size=4)).fit(dataset)
    assert float(regressor.input_std[0]) > 0
    assert not np.allclose(regressor.label_mean, 0.0)


def test_trainer_predictions_in_hand_workspace(small_setup):
    _, dsp, model, _, dataset = small_setup
    regressor = HandJointRegressor(dsp, model)
    trainer = Trainer(regressor, TrainConfig(epochs=2, batch_size=4))
    trainer.fit(dataset)
    pred = trainer.predict(dataset)
    assert pred.shape == (len(dataset), 21, 3)
    # Predictions should live in the hand workspace, near the labels.
    assert np.abs(pred - dataset.labels).max() < 0.5


def test_kfold_by_user_covers_all_users(small_setup):
    _, dsp, model, _, dataset = small_setup
    records = kfold_by_user(
        dataset,
        make_regressor=lambda: HandJointRegressor(dsp, model),
        config=TrainConfig(epochs=1, batch_size=4),
        num_folds=2,
    )
    assert len(records) == 2
    tested_users = sorted(
        u for r in records for u in r["test_users"]
    )
    assert tested_users == [1, 2]
    for record in records:
        assert record["predictions"].shape == (
            len(record["test"]), 21, 3,
        )
        # Test users never appear in this fold's training data.
        assert set(record["test"].user_ids) == set(record["test_users"])


def test_pipeline_end_to_end(small_setup):
    radar, dsp, model, generator, dataset = small_setup
    config = SystemConfig(radar=radar, dsp=dsp, model=model)
    regressor = HandJointRegressor(dsp, model)
    Trainer(regressor, TrainConfig(epochs=1, batch_size=4)).fit(dataset)
    reconstructor = MeshReconstructor(seed=0)
    reconstructor.fit(steps=20, batch_size=8)
    system = MmHand(config, regressor, reconstructor)

    # Simulate a short capture and push raw frames through the pipeline.
    from repro.radar.radar import RadarSimulator
    from repro.radar.scene import Scene
    from repro.radar.scatterers import hand_scatterers
    from repro.hand.gestures import gesture_pose

    subject = make_subjects(1)[0]
    sim = RadarSimulator(radar)
    pose = gesture_pose("open_palm",
                        wrist_position=np.array([0.3, 0.0, 0.0]))
    scene = Scene(hand=hand_scatterers(subject.hand_shape(), pose))
    raw = sim.sequence([scene] * (2 * dsp.segment_frames))

    output = system.process(raw)
    assert output.skeletons.shape == (2, 21, 3)
    assert len(output.meshes) == 2
    assert len(output.timings) == 2
    for timing in output.timings:
        assert isinstance(timing, PipelineTiming)
        assert timing.overall_s == timing.skeleton_s + timing.mesh_s
        assert timing.overall_s > 0


def test_pipeline_preprocess_validates_frame_count(small_setup):
    radar, dsp, model, _, _ = small_setup
    config = SystemConfig(radar=radar, dsp=dsp, model=model)
    system = MmHand(config)
    too_few = np.zeros(
        (1, 12, radar.chirp_loops, radar.samples_per_chirp),
        dtype=complex,
    )
    with pytest.raises(ReproError):
        system.preprocess(too_few)


def test_pipeline_defaults_construct():
    system = MmHand()
    assert system.regressor is not None
    assert system.reconstructor is not None


def test_trainer_validation_pass_records_val_loss(small_setup):
    _, dsp, model, _, dataset = small_setup
    regressor = HandJointRegressor(dsp, model)
    trainer = Trainer(
        regressor, TrainConfig(epochs=2, batch_size=4, seed=0)
    )
    val = dataset.subset(np.arange(4))
    result = trainer.fit(dataset, val_dataset=val)
    assert len(result.epoch_stats) == 2
    assert all("val_loss" in s for s in result.epoch_stats)
    assert all(np.isfinite(s["val_loss"]) for s in result.epoch_stats)


def test_trainer_evaluate_is_gradient_free_and_restores_mode(small_setup):
    _, dsp, model, _, dataset = small_setup
    regressor = HandJointRegressor(dsp, model)
    trainer = Trainer(regressor, TrainConfig(epochs=1, batch_size=4))
    trainer._fit_normalization(dataset)
    regressor.train()
    loss_a = trainer.evaluate(dataset)
    loss_b = trainer.evaluate(dataset)
    assert np.isfinite(loss_a) and loss_a == loss_b
    assert all(p.grad is None for p in regressor.parameters())
    assert regressor.training  # previous mode restored
    with pytest.raises(DatasetError):
        trainer.evaluate(dataset.subset(np.array([], dtype=int)))
