"""Gradient and shape tests of conv / deconv / pooling / batch norm."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn import functional as F
from repro.nn.tensor import Tensor

from conftest import numeric_gradient


def leaf(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=True)


def test_conv2d_matches_scipy():
    from scipy.signal import correlate2d

    x = leaf((1, 1, 6, 6))
    w = leaf((1, 1, 3, 3), seed=1)
    out = F.conv2d(x, w).data[0, 0]
    expected = correlate2d(x.data[0, 0], w.data[0, 0], mode="valid")
    assert np.allclose(out, expected, atol=1e-12)


def test_conv2d_stride_and_padding_shapes():
    x = leaf((2, 3, 8, 8))
    w = leaf((5, 3, 3, 3), seed=1)
    assert F.conv2d(x, w).shape == (2, 5, 6, 6)
    assert F.conv2d(x, w, padding=1).shape == (2, 5, 8, 8)
    assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4)


def test_conv2d_gradients_numeric():
    x = leaf((2, 2, 5, 5))
    w = leaf((3, 2, 3, 3), seed=1)
    b = leaf((3,), seed=2)

    def loss():
        for p in (x, w, b):
            p.grad = None
        return float(
            (F.conv2d(x, w, b, stride=2, padding=1) ** 2).sum().data
        )

    (F.conv2d(x, w, b, stride=2, padding=1) ** 2).sum().backward()
    grads = [x.grad.copy(), w.grad.copy(), b.grad.copy()]
    for p, g in zip((x, w, b), grads):
        assert np.allclose(
            g, numeric_gradient(loss, p.data), atol=1e-4
        )


def test_conv2d_validates():
    x = leaf((2, 3, 8, 8))
    w = leaf((5, 4, 3, 3))
    with pytest.raises(ModelError):
        F.conv2d(x, w)
    with pytest.raises(ModelError):
        F.conv2d(leaf((2, 3, 8)), leaf((5, 3, 3, 3)))
    with pytest.raises(ModelError):
        F.conv2d(x, leaf((5, 3, 3, 3)), stride=0)
    with pytest.raises(ModelError):
        F.conv2d(leaf((1, 3, 2, 2)), leaf((5, 3, 3, 3)))


def test_upsample_zeros_pattern():
    x = leaf((1, 1, 2, 2))
    y = F.upsample_zeros(x, 2)
    assert y.shape == (1, 1, 4, 4)
    assert np.allclose(y.data[0, 0, ::2, ::2], x.data[0, 0])
    assert np.allclose(y.data[0, 0, 1::2, :], 0.0)
    y.sum().backward()
    assert np.allclose(x.grad, 1.0)


def test_upsample_identity_for_stride_one():
    x = leaf((1, 1, 2, 2))
    assert F.upsample_zeros(x, 1) is x


def test_deconv_doubles_spatial_size():
    x = leaf((2, 4, 8, 8))
    w = leaf((3, 4, 3, 3), seed=1)
    out = F.conv2d(F.upsample_zeros(x, 2), w, padding=1)
    assert out.shape == (2, 3, 16, 16)


def test_global_pools():
    x = leaf((2, 3, 4, 5))
    avg = F.global_avg_pool(x, (2, 3))
    mx = F.global_max_pool(x, (2, 3))
    assert avg.shape == (2, 3, 1, 1)
    assert mx.shape == (2, 3, 1, 1)
    assert np.allclose(avg.data[..., 0, 0], x.data.mean(axis=(2, 3)))
    assert np.allclose(mx.data[..., 0, 0], x.data.max(axis=(2, 3)))


def test_flatten():
    x = leaf((2, 3, 4))
    assert F.flatten(x).shape == (2, 12)
    assert F.flatten(x, start_axis=2).shape == (2, 3, 4)


def test_batch_norm2d_normalises_batch():
    x = leaf((4, 3, 5, 5))
    gamma = Tensor(np.ones(3), requires_grad=True)
    beta = Tensor(np.zeros(3), requires_grad=True)
    mean = x.data.mean(axis=(0, 2, 3))
    var = x.data.var(axis=(0, 2, 3))
    out = F.batch_norm2d(x, gamma, beta, mean, var, 1e-5, batch_stats=True)
    assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
    assert np.allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-3)


def test_batch_norm2d_gradients_numeric():
    x = leaf((2, 2, 3, 3))
    gamma = Tensor(np.random.default_rng(1).normal(size=2),
                   requires_grad=True)
    beta = Tensor(np.random.default_rng(2).normal(size=2),
                  requires_grad=True)
    proj = np.random.default_rng(3).normal(size=(2, 2, 3, 3))

    def compute():
        mean = x.data.mean(axis=(0, 2, 3))
        var = x.data.var(axis=(0, 2, 3))
        y = F.batch_norm2d(x, gamma, beta, mean, var, 1e-5,
                           batch_stats=True)
        return (y * Tensor(proj) + y * y * 0.1).sum()

    def loss():
        for p in (x, gamma, beta):
            p.grad = None
        return float(compute().data)

    compute().backward()
    grads = [x.grad.copy(), gamma.grad.copy(), beta.grad.copy()]
    for p, g in zip((x, gamma, beta), grads):
        ng = numeric_gradient(loss, p.data, eps=1e-5)
        assert np.allclose(g, ng, atol=2e-4), p.shape
