"""Tests of the MANO-style hand model: template, blend shapes, skinning
and the FK consistency between the model and the hand kinematics."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.hand.gestures import gesture_pose, list_gestures
from repro.hand.joints import NUM_JOINTS
from repro.hand.kinematics import forward_kinematics
from repro.hand.shape import HandShape
from repro.mano.blend import NUM_SHAPE_PARAMS, build_shape_basis, \
    pose_blend_offsets
from repro.mano.model import ManoHandModel, pose_to_theta, random_theta
from repro.mano.skinning import global_transforms, linear_blend_skinning
from repro.mano.template import TemplateParams, build_template


@pytest.fixture(scope="module")
def model():
    return ManoHandModel()


@pytest.fixture(scope="module")
def template():
    return build_template(HandShape())


def test_template_basic_invariants(template):
    assert template.num_vertices > 300
    assert template.num_faces > 400
    assert np.allclose(template.weights.sum(axis=1), 1.0)
    assert template.faces.min() >= 0
    assert template.faces.max() < template.num_vertices


def test_template_rejects_bad_weights(template):
    bad = template.weights.copy()
    bad[0] *= 2.0
    with pytest.raises(MeshError):
        build_and_replace(template, weights=bad)


def build_and_replace(template, **overrides):
    from repro.mano.template import HandTemplate

    kwargs = dict(
        vertices=template.vertices,
        faces=template.faces,
        weights=template.weights,
        rest_joints=template.rest_joints,
    )
    kwargs.update(overrides)
    return HandTemplate(**kwargs)


def test_template_deterministic():
    a = build_template(HandShape())
    b = build_template(HandShape())
    assert np.array_equal(a.vertices, b.vertices)
    assert np.array_equal(a.faces, b.faces)


def test_template_knobs_preserve_topology():
    base = build_template(HandShape())
    params = TemplateParams()
    for knob in params.knob_names():
        perturbed = build_template(HandShape(), params.perturbed(knob, 0.1))
        assert perturbed.num_vertices == base.num_vertices
        assert np.array_equal(perturbed.faces, base.faces)


def test_template_unknown_knob():
    with pytest.raises(MeshError):
        TemplateParams().perturbed("wingspan", 0.1)


def test_shape_basis_zero_beta_is_base():
    basis = build_shape_basis(HandShape())
    beta = np.zeros(NUM_SHAPE_PARAMS)
    assert np.allclose(basis.shaped_vertices(beta), basis.base.vertices)
    assert np.allclose(basis.shaped_joints(beta), basis.base.rest_joints)


def test_shape_basis_scale_component_grows_hand():
    basis = build_shape_basis(HandShape())
    beta = np.zeros(NUM_SHAPE_PARAMS)
    beta[0] = 1.0  # uniform scale knob
    grown = basis.shaped_joints(beta)
    base = basis.base.rest_joints
    assert np.linalg.norm(grown[12]) > np.linalg.norm(base[12])


def test_shape_basis_rejects_bad_beta():
    basis = build_shape_basis(HandShape())
    with pytest.raises(MeshError):
        basis.shaped_vertices(np.zeros(3))


def test_pose_blend_offsets_zero_at_rest(template):
    offsets = pose_blend_offsets(template, np.zeros((21, 3)))
    assert np.allclose(offsets, 0.0)


def test_pose_blend_offsets_bulge_on_bend(template):
    theta = np.zeros((21, 3))
    theta[6] = [1.0, 0.0, 0.0]  # bend index PIP
    offsets = pose_blend_offsets(template, theta)
    assert np.abs(offsets).max() > 0
    # Offsets point towards the palm (-z).
    assert offsets[:, 2].min() < 0
    assert np.all(offsets[:, 2] <= 0)


def test_global_transforms_identity_pose(template):
    rotations, positions = global_transforms(
        np.zeros((21, 3)), template.rest_joints
    )
    assert np.allclose(rotations, np.eye(3))
    assert np.allclose(positions, template.rest_joints)


def test_lbs_identity_pose_returns_template(template):
    posed, joints = linear_blend_skinning(
        template.vertices, template.weights, np.zeros((21, 3)),
        template.rest_joints,
    )
    assert np.allclose(posed, template.vertices)
    assert np.allclose(joints, template.rest_joints)


def test_model_rest_evaluation(model):
    result = model()
    assert result.vertices.shape == (model.num_vertices, 3)
    assert result.joints.shape == (21, 3)
    assert np.allclose(result.joints, model.rest_joints())


def test_model_fk_matches_hand_kinematics(model):
    """MANO forward kinematics reproduces the hand FK for every gesture
    in the library -- the key consistency property of the reproduction."""
    shape = HandShape()
    for name in list_gestures():
        pose = gesture_pose(
            name, wrist_position=np.zeros(3), orientation=np.eye(3)
        )
        theta = pose_to_theta(pose)
        mano_joints = model(theta=theta).joints
        hand_joints = forward_kinematics(shape, pose)
        err = np.linalg.norm(mano_joints - hand_joints, axis=1).max()
        assert err < 1e-9, f"gesture {name}: FK mismatch {err}"


def test_model_fk_matches_with_orientation(model):
    pose = gesture_pose("grab")  # default orientation (palm to radar)
    pose.wrist_position = np.zeros(3)
    theta = pose_to_theta(pose)
    mano_joints = model(theta=theta).joints
    hand_joints = forward_kinematics(HandShape(), pose)
    assert np.allclose(mano_joints, hand_joints, atol=1e-9)


def test_model_shape_changes_mesh(model):
    beta = np.zeros(NUM_SHAPE_PARAMS)
    beta[0] = 2.0
    big = model(beta=beta)
    base = model()
    assert big.vertices[:, 1].max() > base.vertices[:, 1].max()


def test_model_rejects_bad_theta(model):
    with pytest.raises(MeshError):
        model(theta=np.zeros((20, 3)))


def test_mesh_translated(model):
    mesh = model()
    moved = mesh.translated(np.array([0.3, 0.0, 0.0]))
    assert np.allclose(moved.vertices, mesh.vertices + [0.3, 0, 0])
    assert np.allclose(moved.joints[0], mesh.joints[0] + [0.3, 0, 0])
    with pytest.raises(MeshError):
        mesh.translated(np.zeros(2))


def test_random_theta_is_plausible(model):
    rng = np.random.default_rng(5)
    for _ in range(5):
        theta = random_theta(rng)
        result = model(theta=theta)
        # Mesh stays within a generous bounding box around the wrist.
        assert np.abs(result.vertices).max() < 0.35


def test_pose_blend_can_be_disabled(model):
    rng = np.random.default_rng(2)
    theta = random_theta(rng)
    with_blend = model(theta=theta, use_pose_blend=True)
    without = model(theta=theta, use_pose_blend=False)
    assert not np.allclose(with_blend.vertices, without.vertices)
    # Joints are unaffected by pose blend shapes.
    assert np.allclose(with_blend.joints, without.joints)
