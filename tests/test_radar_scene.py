"""Tests of the scatterer/scene containers."""

import numpy as np
import pytest

from repro.errors import RadarError
from repro.radar.scene import Scatterers, Scene


def make_scatterers(n=3, amp=1.0):
    rng = np.random.default_rng(0)
    return Scatterers(
        positions=rng.uniform(0.2, 1.0, size=(n, 3)),
        velocities=np.zeros((n, 3)),
        amplitudes=np.full(n, amp),
    )


def test_scatterers_shapes_validated():
    with pytest.raises(RadarError):
        Scatterers(
            positions=np.zeros((3, 3)),
            velocities=np.zeros((2, 3)),
            amplitudes=np.zeros(3),
        )
    with pytest.raises(RadarError):
        Scatterers(
            positions=np.zeros((3, 3)),
            velocities=np.zeros((3, 3)),
            amplitudes=np.zeros(2),
        )


def test_scatterers_reject_negative_amplitudes():
    with pytest.raises(RadarError):
        Scatterers(
            positions=np.zeros((1, 3)),
            velocities=np.zeros((1, 3)),
            amplitudes=np.array([-1.0]),
        )


def test_scaled_multiplies_amplitudes():
    s = make_scatterers(amp=2.0).scaled(0.5)
    assert np.allclose(s.amplitudes, 1.0)
    with pytest.raises(RadarError):
        make_scatterers().scaled(-1.0)


def test_concatenate_merges_and_skips_empty():
    merged = Scatterers.concatenate(
        [make_scatterers(2), Scatterers.empty(), make_scatterers(3)]
    )
    assert len(merged) == 5


def test_concatenate_empty_list_gives_empty():
    assert len(Scatterers.concatenate([])) == 0


def test_single_scatterer_promoted_to_2d():
    s = Scatterers(
        positions=np.array([0.3, 0.0, 0.0]),
        velocities=np.zeros(3),
        amplitudes=1.0,
    )
    assert s.positions.shape == (1, 3)
    assert len(s) == 1


def test_scene_attenuates_hand_only():
    hand = make_scatterers(2, amp=1.0)
    background = make_scatterers(3, amp=2.0)
    scene = Scene(hand=hand, background=background, hand_attenuation=0.5)
    combined = scene.all_scatterers()
    assert len(combined) == 5
    assert np.allclose(combined.amplitudes[:2], 0.5)
    assert np.allclose(combined.amplitudes[2:], 2.0)


def test_scene_validates_attenuation():
    with pytest.raises(RadarError):
        Scene(hand=make_scatterers(), hand_attenuation=1.5)
