"""Tests of Module mechanics and the layer zoo."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    LayerNorm,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.tensor import Tensor


def test_module_registers_parameters_and_submodules():
    class Net(Module):
        def __init__(self):
            super().__init__()
            self.fc = Linear(3, 4)
            self.scale = Tensor(np.ones(1), requires_grad=True)

        def forward(self, x):
            return self.fc(x) * self.scale

    net = Net()
    names = dict(net.named_parameters())
    assert set(names) == {"scale", "fc.weight", "fc.bias"}
    assert len(net.parameters()) == 3


def test_train_eval_propagates():
    net = Sequential(Linear(2, 2), Dropout(0.5))
    net.eval()
    assert all(not m.training for m in net.modules())
    net.train()
    assert all(m.training for m in net.modules())


def test_state_dict_round_trip():
    net = Sequential(Linear(3, 4), BatchNorm2d(4))
    state = net.state_dict()
    other = Sequential(Linear(3, 4), BatchNorm2d(4))
    other.load_state_dict(state)
    for (na, pa), (nb, pb) in zip(
        net.named_parameters(), other.named_parameters()
    ):
        assert na == nb
        assert np.array_equal(pa.data, pb.data)


def test_load_state_dict_validates():
    net = Sequential(Linear(3, 4))
    state = net.state_dict()
    state["bogus"] = np.zeros(3)
    with pytest.raises(ModelError):
        net.load_state_dict(state)
    bad = net.state_dict()
    bad["0.weight"] = np.zeros((2, 2))
    with pytest.raises(ModelError):
        net.load_state_dict(bad)
    missing = net.state_dict()
    del missing["0.bias"]
    with pytest.raises(ModelError):
        net.load_state_dict(missing)


def test_linear_shapes_and_validation():
    fc = Linear(3, 5)
    out = fc(Tensor(np.ones((2, 3))))
    assert out.shape == (2, 5)
    with pytest.raises(ModelError):
        fc(Tensor(np.ones((2, 4))))


def test_linear_no_bias():
    fc = Linear(3, 5, bias=False)
    assert fc.bias is None
    assert len(fc.parameters()) == 1


def test_conv2d_layer():
    conv = Conv2d(3, 6, kernel_size=3, stride=2, padding=1)
    out = conv(Tensor(np.ones((2, 3, 8, 8))))
    assert out.shape == (2, 6, 4, 4)


def test_conv_transpose_doubles():
    deconv = ConvTranspose2d(4, 2, kernel_size=3, stride=2)
    out = deconv(Tensor(np.ones((1, 4, 4, 4))))
    assert out.shape == (1, 2, 8, 8)
    with pytest.raises(ModelError):
        ConvTranspose2d(4, 2, kernel_size=4)


def test_batchnorm_updates_running_stats():
    bn = BatchNorm2d(2, momentum=0.5)
    x = Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(8, 2, 4, 4)))
    bn(x)
    assert not np.allclose(bn.running_mean, 0.0)
    assert not np.allclose(bn.running_var, 1.0)


def test_batchnorm_eval_uses_running_stats():
    bn = BatchNorm2d(2)
    bn.eval()
    x = Tensor(np.random.default_rng(0).normal(size=(4, 2, 3, 3)))
    out = bn(x)
    # running stats are (0, 1): eval output equals the input.
    assert np.allclose(out.data, x.data, atol=1e-4)


def test_batchnorm_validates_channels():
    with pytest.raises(ModelError):
        BatchNorm2d(2)(Tensor(np.ones((1, 3, 2, 2))))


def test_layernorm_normalises_rows():
    ln = LayerNorm(6)
    x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(4, 6)))
    out = ln(x)
    assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-5)
    assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)
    with pytest.raises(ModelError):
        ln(Tensor(np.ones((2, 5))))


def test_activations():
    x = Tensor(np.array([-1.0, 0.0, 2.0]))
    assert np.allclose(ReLU()(x).data, [0, 0, 2])
    assert np.allclose(Sigmoid()(x).data, 1 / (1 + np.exp([1, 0, -2])))
    assert np.allclose(Tanh()(x).data, np.tanh([-1, 0, 2]))


def test_dropout_train_vs_eval():
    drop = Dropout(0.5, seed=0)
    x = Tensor(np.ones((100, 10)))
    out = drop(x)
    kept = (out.data != 0).mean()
    assert 0.3 < kept < 0.7
    assert np.allclose(out.data[out.data != 0], 2.0)
    drop.eval()
    assert np.allclose(drop(x).data, 1.0)
    with pytest.raises(ModelError):
        Dropout(1.0)


def test_sequential_iteration_and_indexing():
    a, b = Linear(2, 3), ReLU()
    seq = Sequential(a, b)
    assert list(seq) == [a, b]
    assert seq[0] is a
    out = seq(Tensor(np.ones((1, 2))))
    assert out.shape == (1, 3)


def test_conv_transpose_gradients_match_numeric():
    from conftest import numeric_gradient

    rng = np.random.default_rng(0)
    deconv = ConvTranspose2d(2, 3, kernel_size=3, stride=2)
    for param in deconv.parameters():
        param.data = param.data.astype(np.float64)
    x = Tensor(
        rng.normal(size=(2, 2, 3, 3)), requires_grad=True
    )
    params = [x] + deconv.parameters()

    def loss():
        for p in params:
            p.grad = None
        return float((deconv(x) ** 2).sum().data)

    (deconv(x) ** 2).sum().backward()
    grads = [p.grad.copy() for p in params]
    for p, g in zip(params, grads):
        assert np.allclose(g, numeric_gradient(loss, p.data), atol=1e-4)
