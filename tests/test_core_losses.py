"""Tests of the combined 3-D + kinematic loss (paper Eq. 8-9)."""

import numpy as np
import pytest

from repro.config import TrainConfig
from repro.core.losses import (
    combined_loss,
    finger_straightness,
    joint_loss_3d,
    kinematic_loss,
)
from repro.errors import ModelError
from repro.hand.gestures import gesture_pose
from repro.hand.kinematics import forward_kinematics
from repro.hand.shape import HandShape
from repro.nn.tensor import Tensor


def hand_joints(gesture, batch=1):
    pose = gesture_pose(gesture, wrist_position=np.zeros(3),
                        orientation=np.eye(3))
    joints = forward_kinematics(HandShape(), pose)
    return np.tile(joints[None], (batch, 1, 1)).astype(np.float32)


def test_l3d_zero_for_perfect_prediction():
    gt = hand_joints("open_palm")
    loss = joint_loss_3d(Tensor(gt), gt)
    assert float(loss.data) < 1e-4


def test_l3d_scales_with_offset():
    gt = hand_joints("open_palm")
    offset = gt + 0.01  # 1 cm on every joint
    loss = joint_loss_3d(Tensor(offset), gt)
    # Sum over 21 joints of 1 cm * sqrt(3) each.
    assert float(loss.data) == pytest.approx(
        21 * 0.01 * np.sqrt(3), rel=1e-3
    )


def test_straightness_detects_open_vs_fist():
    open_cos = finger_straightness(hand_joints("open_palm")[0])
    fist_cos = finger_straightness(hand_joints("fist")[0])
    # Non-thumb fingers: straight when open, bent in a fist.
    assert np.all(open_cos[0, 1:] > 0.999)
    assert np.all(fist_cos[0, 1:] < 0.9)


def test_kinematic_loss_zero_for_ground_truth():
    """The GT skeleton satisfies its own geometric constraints."""
    for gesture in ("open_palm", "fist", "point", "grab"):
        gt = hand_joints(gesture)
        loss = kinematic_loss(Tensor(gt), gt)
        assert float(loss.data) < 5e-2, gesture


def test_kinematic_loss_penalises_non_collinear_prediction():
    gt = hand_joints("open_palm")  # straight fingers -> collinear case
    bent = gt.copy()
    bent[0, 6] += [0.0, 0.0, -0.03]  # kink the index PIP out of line
    loss_good = float(kinematic_loss(Tensor(gt), gt).data)
    loss_bad = float(kinematic_loss(Tensor(bent), gt).data)
    assert loss_bad > loss_good + 0.05


def test_kinematic_loss_penalises_out_of_plane_prediction():
    gt = hand_joints("fist")  # bent fingers -> coplanar case
    twisted = gt.copy()
    # Push the index DIP out of the finger plane (the plane of a curled
    # index finger is roughly the world x-y... use the GT normal).
    a, b, _, d = 5, 6, 7, 8
    normal = np.cross(gt[0, b] - gt[0, a], gt[0, d] - gt[0, a])
    normal /= np.linalg.norm(normal)
    twisted[0, 7] += (0.02 * normal).astype(np.float32)
    loss_good = float(kinematic_loss(Tensor(gt), gt).data)
    loss_bad = float(kinematic_loss(Tensor(twisted), gt).data)
    assert loss_bad > loss_good + 0.05


def test_kinematic_loss_gradient_flows():
    gt = hand_joints("open_palm")
    pred = Tensor(gt + 0.01, requires_grad=True)
    loss = kinematic_loss(pred, gt)
    loss.backward()
    assert pred.grad is not None


def test_kinematic_loss_validates_shapes():
    gt = hand_joints("fist")
    with pytest.raises(ModelError):
        kinematic_loss(Tensor(np.zeros((1, 20, 3))), gt)
    with pytest.raises(ModelError):
        kinematic_loss(Tensor(gt), gt[:, :20])


def test_combined_loss_weights():
    gt = hand_joints("open_palm", batch=2)
    pred = Tensor(gt + 0.01)
    config = TrainConfig(beta_3d=2.0, gamma_kinematic=0.5)
    total, l3d, lkine = combined_loss(pred, gt, config)
    assert float(total.data) == pytest.approx(
        2.0 * float(l3d.data) + 0.5 * float(lkine.data), rel=1e-5
    )


def test_combined_loss_gamma_zero_skips_kinematics():
    gt = hand_joints("fist")
    pred = Tensor(gt + 0.02)
    config = TrainConfig(gamma_kinematic=0.0)
    total, l3d, lkine = combined_loss(pred, gt, config)
    assert float(lkine.data) == 0.0
    assert float(total.data) == pytest.approx(float(l3d.data), rel=1e-6)


def test_combined_loss_default_config():
    gt = hand_joints("point")
    total, _, _ = combined_loss(Tensor(gt + 0.01), gt)
    assert float(total.data) > 0
