"""Tests of hand-to-scatterer conversion, gloves and handheld objects."""

import numpy as np
import pytest

from repro.errors import RadarError
from repro.hand.gestures import gesture_pose
from repro.hand.shape import HandShape
from repro.radar.scatterers import (
    GLOVE_MATERIALS,
    HANDHELD_OBJECTS,
    GloveSpec,
    HandheldObjectSpec,
    hand_scatterers,
)


@pytest.fixture
def shape():
    return HandShape()


@pytest.fixture
def pose():
    return gesture_pose("open_palm", wrist_position=np.array([0.3, 0, 0]))


def test_base_scatterer_count(shape, pose):
    s = hand_scatterers(shape, pose, rng=np.random.default_rng(0))
    # 21 joints + 20 phalange midpoints + 8 palm points.
    assert len(s) == 49


def test_scatterers_near_hand(shape, pose):
    s = hand_scatterers(shape, pose, rng=np.random.default_rng(0))
    dists = np.linalg.norm(s.positions - [0.3, 0, 0], axis=1)
    assert dists.max() < 0.30


def test_zero_velocity_without_prev_pose(shape, pose):
    s = hand_scatterers(shape, pose, rng=np.random.default_rng(0))
    assert np.allclose(s.velocities, 0.0)


def test_velocities_from_finite_difference(shape):
    p0 = gesture_pose("fist", wrist_position=np.array([0.3, 0, 0]))
    p1 = gesture_pose("open_palm", wrist_position=np.array([0.3, 0.01, 0]))
    s = hand_scatterers(
        shape, p1, prev_pose=p0, frame_period_s=0.05,
        rng=np.random.default_rng(0),
    )
    speeds = np.linalg.norm(s.velocities, axis=1)
    assert speeds.max() > 0.1  # fingers moved between frames
    # Wrist moved 1 cm in 50 ms = 0.2 m/s.
    assert speeds[0] == pytest.approx(0.2, rel=1e-6)


def test_reflectivity_scales_amplitudes(shape, pose):
    base = hand_scatterers(
        shape, pose, rng=np.random.default_rng(0), speckle_std=0.0
    )
    strong = hand_scatterers(
        shape, pose, reflectivity=2.0, rng=np.random.default_rng(0),
        speckle_std=0.0,
    )
    assert np.allclose(strong.amplitudes, 2.0 * base.amplitudes)


def test_speckle_changes_between_frames(shape, pose):
    rng = np.random.default_rng(0)
    a = hand_scatterers(shape, pose, rng=rng)
    b = hand_scatterers(shape, pose, rng=rng)
    assert not np.allclose(a.amplitudes, b.amplitudes)


def test_glove_adds_scatterers(shape, pose):
    gloved = hand_scatterers(
        shape, pose, glove=GLOVE_MATERIALS["cotton"],
        rng=np.random.default_rng(0),
    )
    bare = hand_scatterers(shape, pose, rng=np.random.default_rng(0))
    assert len(gloved) == 2 * len(bare)


def test_glove_attenuates_skin_and_adds_fabric_layer(shape, pose):
    glove = GLOVE_MATERIALS["silk"]
    bare = hand_scatterers(
        shape, pose, rng=np.random.default_rng(0), speckle_std=0.0
    )
    gloved = hand_scatterers(
        shape, pose, glove=glove, rng=np.random.default_rng(0),
        speckle_std=0.0,
    )
    n = len(bare)
    # Skin return attenuated by the fabric (two-way).
    assert np.allclose(
        gloved.amplitudes[:n], bare.amplitudes * glove.skin_attenuation
    )
    # Fabric layer scaled by its reflectivity relative to the bare skin.
    assert np.allclose(
        gloved.amplitudes[n:], bare.amplitudes * glove.reflectivity
    )
    # The fabric layer is spatially displaced (bin-scale diffusion).
    offsets = np.linalg.norm(
        gloved.positions[n:] - gloved.positions[:n], axis=1
    )
    assert offsets.mean() > 0.02


def test_handheld_object_adds_scatterers(shape, pose):
    obj = HANDHELD_OBJECTS["pen"]
    s = hand_scatterers(
        shape, pose, handheld=obj, rng=np.random.default_rng(0)
    )
    bare = hand_scatterers(shape, pose, rng=np.random.default_rng(0))
    assert len(s) == len(bare) + len(obj.offsets_hand_frame)


def test_power_bank_shadows_hand(shape, pose):
    bare = hand_scatterers(
        shape, pose, rng=np.random.default_rng(0), speckle_std=0.0
    )
    covered = hand_scatterers(
        shape, pose, handheld=HANDHELD_OBJECTS["power_bank"],
        rng=np.random.default_rng(0), speckle_std=0.0,
    )
    n = len(bare)
    assert covered.amplitudes[:n].sum() < bare.amplitudes.sum()


def test_all_registry_objects_work(shape, pose):
    for name, obj in HANDHELD_OBJECTS.items():
        s = hand_scatterers(
            shape, pose, handheld=obj, rng=np.random.default_rng(0)
        )
        assert len(s) > 49, name
    for name, glove in GLOVE_MATERIALS.items():
        s = hand_scatterers(
            shape, pose, glove=glove, rng=np.random.default_rng(0)
        )
        assert len(s) == 98, name


def test_glove_spec_validation():
    with pytest.raises(RadarError):
        GloveSpec("bad", thickness_m=-1.0, reflectivity=0.5,
                  diffusion_m=0.01)


def test_object_spec_validation():
    with pytest.raises(RadarError):
        HandheldObjectSpec("bad", offsets_hand_frame=np.zeros((2, 2)),
                           amplitude=0.1)
    with pytest.raises(RadarError):
        HandheldObjectSpec("bad", offsets_hand_frame=np.zeros((2, 3)),
                           amplitude=0.1, finger_shadowing=2.0)


def test_frame_period_validation(shape, pose):
    with pytest.raises(RadarError):
        hand_scatterers(shape, pose, frame_period_s=0.0)
