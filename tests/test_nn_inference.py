"""Tests of the compiled inference engine (repro.nn.inference)."""

import numpy as np
import pytest

from repro.core.regressor import HandJointRegressor
from repro.errors import InferenceCompileError
from repro.nn.inference import BufferArena, compile_model
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    LayerNorm,
    Linear,
    Module,
    ReLU,
    Sequential,
)
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.obs import metrics as obs_metrics


@pytest.fixture
def regressor(small_dsp, small_model):
    return HandJointRegressor(small_dsp, small_model, seed=3)


def _segments(rng, dsp, batch=5):
    return rng.normal(
        size=(
            batch, dsp.segment_frames, dsp.doppler_bins,
            dsp.range_bins, dsp.angle_bins_total,
        )
    ).astype(np.float32)


def test_compiled_predict_matches_eager(regressor, small_dsp, rng):
    x = _segments(rng, small_dsp)
    eager = regressor.predict(x, use_compiled=False)
    compiled = regressor.predict(x, use_compiled=True)
    assert compiled.shape == eager.shape
    assert float(np.abs(compiled - eager).max()) <= 1e-5


def test_compiled_run_matches_forward(regressor, small_dsp, rng):
    x = _segments(rng, small_dsp, batch=3)
    regressor.eval()
    plan = compile_model(regressor)
    eager = regressor.forward(Tensor(x)).data
    out = plan.run(x)
    assert float(np.abs(out - eager).max()) <= 1e-5


def test_compiled_run_returns_fresh_copy(regressor, small_dsp, rng):
    x = _segments(rng, small_dsp, batch=2)
    plan = regressor.compiled()
    first = plan.run(x)
    snapshot = first.copy()
    first.fill(123.0)  # clobbering the caller's array must be harmless
    second = plan.run(x)
    assert np.array_equal(second, snapshot)


def test_sharded_execution_matches_single_thread(
    regressor, small_dsp, rng
):
    x = _segments(rng, small_dsp, batch=7)
    single = regressor.predict(x)
    sharded = regressor.predict(x, shards=3)
    assert float(np.abs(sharded - single).max()) <= 1e-5
    # Batches too small to split fall back to the single-arena path.
    tiny = regressor.predict(x[:1], shards=4)
    assert np.allclose(tiny, single[:1], atol=1e-5)


def _conv_bn_relu(dtype, rng):
    """A Conv+BN+ReLU stack with non-trivial statistics in ``dtype``."""
    seq = Sequential(
        Conv2d(3, 5, kernel_size=3, padding=1,
               rng=np.random.default_rng(7)),
        BatchNorm2d(5),
        ReLU(),
    )
    bn = seq.layers[1]
    bn._buffers["running_mean"] = rng.normal(size=5).astype(dtype)
    bn._buffers["running_var"] = rng.uniform(0.5, 2.0, size=5).astype(dtype)
    object.__setattr__(bn, "running_mean", bn._buffers["running_mean"])
    object.__setattr__(bn, "running_var", bn._buffers["running_var"])
    bn.gamma.data = rng.normal(size=5).astype(dtype)
    bn.beta.data = rng.normal(size=5).astype(dtype)
    for param in seq.parameters():
        param.data = param.data.astype(dtype)
    return seq.eval()


@pytest.mark.parametrize(
    "dtype,rel_tol",
    [(np.float32, 1e-6), (np.float64, 1e-12)],
)
def test_conv_bn_folding_matches_eager(dtype, rel_tol, rng):
    seq = _conv_bn_relu(dtype, rng)
    x = rng.normal(size=(2, 3, 8, 8)).astype(dtype)
    eager = seq(Tensor(x)).data
    compiled = compile_model(seq)
    assert len(compiled.plan.ops) == 1  # conv, bn and relu fused
    out = compiled.run(x)
    assert out.dtype == np.dtype(dtype)
    scale = float(np.abs(eager).max())
    assert float(np.abs(out - eager).max()) / scale <= rel_tol


def test_conv_transpose_bn_folding_matches_eager(rng):
    seq = Sequential(
        ConvTranspose2d(4, 3, kernel_size=3, stride=2,
                        rng=np.random.default_rng(5)),
        BatchNorm2d(3),
        ReLU(),
    ).eval()
    x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
    eager = seq(Tensor(x)).data
    out = compile_model(seq).run(x)
    assert out.shape == eager.shape
    assert float(np.abs(out - eager).max()) <= 1e-5


def test_optimizer_step_invalidates_folded_weights(
    regressor, small_dsp, rng
):
    x = _segments(rng, small_dsp, batch=2)
    plan = regressor.compiled()
    before = plan.run(x)
    opt = Adam(regressor.parameters(), lr=5e-2)
    loss = (regressor.forward(Tensor(regressor.normalize_inputs(x)))
            * Tensor(np.float32(1.0))).sum()
    loss.backward()
    opt.step()
    after = plan.run(x)
    eager_after = regressor.predict(x, use_compiled=False)
    compiled_after = regressor.predict(x)
    assert not np.allclose(before, after)
    assert float(np.abs(compiled_after - eager_after).max()) <= 1e-5


def test_load_state_dict_invalidates_folded_weights(
    small_dsp, small_model, rng
):
    a = HandJointRegressor(small_dsp, small_model, seed=1)
    b = HandJointRegressor(small_dsp, small_model, seed=2)
    x = _segments(rng, small_dsp, batch=2)
    pred_b_initial = b.predict(x)  # compiles b's plan from seed-2 weights
    b.load_state_dict(a.state_dict())
    assert np.allclose(b.predict(x), a.predict(x), atol=1e-6)
    assert not np.allclose(b.predict(x), pred_b_initial)


def test_unsupported_module_raises_and_predict_falls_back(
    regressor, small_dsp, small_model, rng
):
    hidden = small_model.lstm_hidden
    regressor.head = Sequential(
        Linear(hidden, hidden),
        LayerNorm(hidden),  # the compiler has no lowering for this
        Linear(hidden, small_model.num_joints * 3),
    )
    with pytest.raises(InferenceCompileError):
        compile_model(regressor)
    assert regressor.compiled() is None
    x = _segments(rng, small_dsp, batch=2)
    eager = regressor.predict(x, use_compiled=False)
    fallback = regressor.predict(x)  # must not raise
    assert np.allclose(fallback, eager)


def test_dropout_compiles_to_identity(rng):
    seq = Sequential(Linear(6, 6), Dropout(0.5), Linear(6, 2)).eval()
    x = rng.normal(size=(4, 6)).astype(np.float32)
    eager = seq(Tensor(x)).data
    out = compile_model(seq).run(x)
    assert np.allclose(out, eager, atol=1e-6)


def test_compile_rejects_unknown_custom_module():
    class Strange(Module):
        def forward(self, x):
            return x

    with pytest.raises(InferenceCompileError):
        compile_model(Sequential(Linear(3, 3), Strange()))


def test_plan_counters_flow_through_obs(regressor, small_dsp, rng):
    compiles = obs_metrics.counter("model.plan.compiles").value
    executes = obs_metrics.counter("model.plan.executes").value
    x = _segments(rng, small_dsp, batch=2)
    regressor.predict(x)
    regressor.predict(x)
    assert obs_metrics.counter("model.plan.compiles").value == compiles + 1
    assert obs_metrics.counter("model.plan.executes").value == executes + 2


def test_refold_counter_increments_on_weight_change(
    regressor, small_dsp, rng
):
    x = _segments(rng, small_dsp, batch=2)
    regressor.predict(x)
    refolds = obs_metrics.counter("model.plan.refolds").value
    regressor.load_state_dict(regressor.state_dict())
    regressor.predict(x)
    assert obs_metrics.counter("model.plan.refolds").value == refolds + 1


def test_buffer_arena_reuses_until_shape_changes():
    arena = BufferArena()
    a = arena.get(("op", "buf"), (4, 4), np.float32)
    b = arena.get(("op", "buf"), (4, 4), np.float32)
    assert a is b
    c = arena.get(("op", "buf"), (2, 4), np.float32)
    assert c is not a and c.shape == (2, 4)
    d = arena.get(("op", "zero"), (3,), np.float32, zero=True)
    assert np.all(d == 0.0)
    assert len(arena) == 2 and arena.nbytes == c.nbytes + d.nbytes


def test_plan_validates_input_shape(regressor, small_dsp, rng):
    from repro.errors import ModelError

    bad = rng.normal(
        size=(2, small_dsp.segment_frames + 1, small_dsp.doppler_bins,
              small_dsp.range_bins, small_dsp.angle_bins_total)
    ).astype(np.float32)
    plan = regressor.compiled()
    with pytest.raises(ModelError):
        plan.run(bad)


def test_single_segment_promotion_matches_batched(
    regressor, small_dsp, rng
):
    x = _segments(rng, small_dsp, batch=1)
    plan = regressor.compiled()
    batched = plan.run(x)
    promoted = plan.run(x[0])  # (st, V, D, A) promoted to batch of one
    assert np.array_equal(batched, promoted)


def test_memory_plan_shrinks_arena(regressor, small_dsp, rng):
    x = _segments(rng, small_dsp, batch=3)
    plan = regressor.compiled()
    plan.run(x)
    stats = plan.stats()
    assert stats["memory_plans"] >= 1
    assert 0 < stats["planned_bytes"] < stats["arena_bytes"]


def test_memory_plan_execution_is_deterministic(
    regressor, small_dsp, rng
):
    # Slot sharing must never let one op read another's stale bytes:
    # re-running the planned arena bit-for-bit reproduces the output.
    x = _segments(rng, small_dsp, batch=2)
    plan = regressor.compiled()
    first = plan.run(x).copy()
    for _ in range(3):
        assert np.array_equal(plan.run(x), first)


def test_profile_reports_per_op_timings(regressor, small_dsp, rng):
    x = _segments(rng, small_dsp, batch=2)
    plan = regressor.compiled()
    rows = plan.profile(regressor.normalize_inputs(x))
    assert rows and len(rows) == len(plan.plan.ops)
    assert all(row["total_s"] >= 0.0 for row in rows)
    # Sorted descending by time, shares sum to ~1.
    totals = [row["total_s"] for row in rows]
    assert totals == sorted(totals, reverse=True)
    assert abs(sum(row["share"] for row in rows) - 1.0) < 1e-6
