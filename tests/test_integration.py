"""Integration tests: the full system at reduced scale, including the
experiment runners that power the benchmark harness."""

import numpy as np
import pytest

from repro.config import (
    CampaignConfig,
    DspConfig,
    ModelConfig,
    RadarConfig,
    SystemConfig,
    TrainConfig,
)
from repro.core.mesh_recovery import MeshReconstructor
from repro.core.pipeline import MmHand
from repro.core.regressor import HandJointRegressor
from repro.core.training import Trainer, kfold_by_user
from repro.data.collection import CampaignGenerator, CaptureOptions
from repro.eval import experiments
from repro.hand.subjects import make_subjects
from repro.radar.clutter import BodyPosition


RADAR = RadarConfig(samples_per_chirp=32, chirp_loops=8)
DSP = DspConfig(
    range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
    segment_frames=2,
)
MODEL = ModelConfig(
    base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
    lstm_hidden=16,
)
TRAIN = TrainConfig(epochs=2, batch_size=4)


@pytest.fixture(scope="module")
def setup():
    subjects = make_subjects(4)
    generator = CampaignGenerator(
        RADAR, DSP, CampaignConfig(num_users=4, segments_per_user=8)
    )
    dataset = generator.generate(subjects=subjects, seed=11)
    records = kfold_by_user(
        dataset,
        make_regressor=lambda: HandJointRegressor(DSP, MODEL),
        config=TRAIN,
        num_folds=2,
    )
    return subjects, generator, dataset, records


def test_cv_records_structure(setup):
    _, _, dataset, records = setup
    assert len(records) == 2
    total_test = sum(len(r["test"]) for r in records)
    assert total_test == len(dataset)


def test_overall_performance_experiment(setup):
    _, _, _, records = setup
    result = experiments.overall_performance(records)
    assert set(result["per_user"]) == {1, 2, 3, 4}
    assert result["mean_mpjpe_mm"] > 0
    assert 0 <= result["mean_pck_percent"] <= 100
    assert result["std_mpjpe_mm"] >= 0


def test_pck_curves_experiment(setup):
    _, _, _, records = setup
    result = experiments.pck_threshold_curves(records)
    assert set(result["curves"]) == {"palm", "fingers", "overall"}
    for curve in result["curves"].values():
        assert np.all(np.diff(curve) >= 0)
    for value in result["auc"].values():
        assert 0 <= value <= 1


def test_cdf_experiment(setup):
    _, _, _, records = setup
    result = experiments.mpjpe_cdf(records)
    assert 0 <= result["within_30mm_percent"] <= 100
    assert result["fractions"][-1] == pytest.approx(1.0)


def test_condition_evaluation(setup):
    subjects, generator, _, records = setup
    regressor = records[0]["regressor"]
    result = experiments.evaluate_condition(
        regressor, generator, subjects[:1],
        CaptureOptions(environment="lab", glove="silk"),
        segments_per_user=4,
    )
    assert result["mpjpe_mm"] > 0
    assert result["dataset"].meta[0].condition == "glove:silk"


def test_distance_sweep_experiment(setup):
    subjects, generator, _, records = setup
    result = experiments.distance_sweep(
        records[0]["regressor"], generator, subjects[:1],
        distances_m=(0.3, 0.6), segments_per_user=4,
    )
    assert len(result["rows"]) == 2
    assert result["rows"][0]["distance_m"] == 0.3
    for row in result["rows"]:
        assert row["mpjpe_mm"] > 0


def test_angle_sweep_experiment(setup):
    subjects, generator, _, records = setup
    result = experiments.angle_sweep(
        records[0]["regressor"], generator, subjects[:1],
        angle_bins_deg=(-15.0, 15.0), segments_per_user=4,
    )
    assert [row["angle_deg"] for row in result["rows"]] == [-15.0, 15.0]


def test_body_position_experiment(setup):
    subjects, generator, _, records = setup
    result = experiments.body_position_experiment(
        records[0]["regressor"], generator, subjects[:1],
        segments_per_user=4,
    )
    assert set(result) == {"type1_front", "type2_side"}
    for entry in result.values():
        assert entry["mpjpe_mm"] > 0


def test_environment_experiment_uses_cv_meta(setup):
    _, _, _, records = setup
    result = experiments.environment_experiment(records)
    assert "overall" in result
    assert len(result) >= 2  # at least one environment + overall


def test_timing_experiment(setup):
    _, _, dataset, records = setup
    reconstructor = MeshReconstructor(seed=0)
    reconstructor.fit(steps=10, batch_size=8)
    system = MmHand(
        SystemConfig(radar=RADAR, dsp=DSP, model=MODEL),
        records[0]["regressor"],
        reconstructor,
    )
    result = experiments.timing_experiment(
        system, dataset.segments[:3]
    )
    assert len(result["skeleton_ms"]) == 3
    assert result["mean_overall_ms"] == pytest.approx(
        result["mean_skeleton_ms"] + result["mean_mesh_ms"], rel=1e-6
    )
    assert result["p90_overall_ms"] >= 0


def test_glove_and_handheld_and_obstacle_experiments(setup):
    subjects, generator, _, records = setup
    regressor = records[0]["regressor"]
    gloves = experiments.glove_experiment(
        regressor, generator, subjects[:1], segments_per_user=4
    )
    assert set(gloves) == {"silk", "cotton", "overall"}
    objects = experiments.handheld_experiment(
        regressor, generator, subjects[:1], segments_per_user=4
    )
    assert set(objects) == {
        "table_tennis_ball", "headphone_case", "pen", "power_bank",
    }
    obstacles = experiments.obstacle_experiment(
        regressor, generator, subjects[:1], segments_per_user=4
    )
    assert set(obstacles) == {"a4_paper", "cloth", "wood_board"}


def test_pooled_requires_records():
    with pytest.raises(Exception):
        experiments.overall_performance([])
