"""Satellite coverage for the serving tier's accounting contracts:
the deprecated ``repro.serving.metrics`` shim must re-export the
unified registry (with a DeprecationWarning), and ``RequestQueue``
loss counters must exactly match observed losses under concurrent
multi-producer load."""

import importlib
import sys
import threading

import numpy as np
import pytest

from repro.errors import QueueFullError
from repro.obs.metrics import MetricsRegistry
from repro.serving import RequestQueue, SegmentRequest


# ----------------------------------------------------------------------
# repro.serving.metrics deprecation shim
# ----------------------------------------------------------------------


def test_serving_metrics_shim_warns_and_reexports():
    sys.modules.pop("repro.serving.metrics", None)
    with pytest.warns(DeprecationWarning, match="repro.obs.metrics"):
        shim = importlib.import_module("repro.serving.metrics")
    obs = importlib.import_module("repro.obs.metrics")
    # Same objects, not parallel copies: isinstance checks and registry
    # identity keep working across old and new import paths.
    for name in ("Counter", "EventLog", "Gauge", "Histogram",
                 "MetricsRegistry"):
        assert getattr(shim, name) is getattr(obs, name), name
    assert set(shim.__all__) == {
        "Counter", "EventLog", "Gauge", "Histogram", "MetricsRegistry"
    }


def test_serving_package_import_does_not_warn(recwarn):
    """The repo itself no longer imports the deprecated path."""
    for module in ("repro.serving", "repro.gateway", "repro.cli"):
        sys.modules.pop(module, None)
        importlib.import_module(module)
    assert not [
        w for w in recwarn.list
        if issubclass(w.category, DeprecationWarning)
        and "repro.serving.metrics" in str(w.message)
    ]


# ----------------------------------------------------------------------
# RequestQueue loss accounting under concurrency
# ----------------------------------------------------------------------


def _request(session_id, frame_index):
    return SegmentRequest(
        session_id=session_id,
        frame_index=frame_index,
        segment=np.zeros((2, 2, 2, 2)),
    )


def _hammer(queue, session_id, count, losses, lock):
    """Producer thread: push ``count`` requests, tallying its own
    observed losses (evictions returned / rejections raised)."""
    local = {"dropped": 0, "rejected": 0}
    for index in range(count):
        try:
            evicted = queue.put(_request(session_id, index))
        except QueueFullError:
            local["rejected"] += 1
        else:
            if evicted is not None:
                local["dropped"] += 1
    with lock:
        losses["dropped"] += local["dropped"]
        losses["rejected"] += local["rejected"]


@pytest.mark.parametrize("policy,counter", [
    ("drop-oldest", "serving.queue.dropped"),
    ("reject", "serving.queue.rejected"),
])
def test_queue_loss_counters_match_observed_losses(policy, counter):
    """N producers racing a tiny queue: the metrics counter, the
    queue's own tally, and the sum of per-producer observations must
    agree exactly -- no loss is double- or under-counted."""
    registry = MetricsRegistry()
    queue = RequestQueue(capacity=8, policy=policy, metrics=registry)
    losses = {"dropped": 0, "rejected": 0}
    lock = threading.Lock()
    producers = [
        threading.Thread(
            target=_hammer,
            args=(queue, f"client-{i}", 100, losses, lock),
        )
        for i in range(6)
    ]
    for thread in producers:
        thread.start()
    for thread in producers:
        thread.join()

    total_put = 6 * 100
    kind = "dropped" if policy == "drop-oldest" else "rejected"
    observed = losses[kind]
    assert observed > 0  # the race actually overflowed the queue
    assert getattr(queue, kind) == observed
    assert registry.counter(counter).value == observed
    # Conservation: everything pushed is still queued, or was lost --
    # exactly once (nothing consumes the queue in this test).
    if policy == "drop-oldest":
        assert len(queue) == total_put - observed
    else:
        assert len(queue) + observed == total_put
    # The loss event log carries one entry per loss (600 puts stay
    # within the log's 1024-entry window).
    events = [
        e for e in registry.events.tail()
        if e["kind"] == f"{kind}_request"
    ]
    assert len(events) == observed


def test_queue_loss_counters_stay_zero_without_overflow():
    registry = MetricsRegistry()
    queue = RequestQueue(capacity=64, policy="reject", metrics=registry)
    for index in range(32):
        queue.put(_request("calm", index))
    assert queue.rejected == queue.dropped == 0
    snapshot = registry.snapshot()
    assert "serving.queue.rejected" not in snapshot["counters"]
    assert "serving.queue.dropped" not in snapshot["counters"]
