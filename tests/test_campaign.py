"""Campaign-scale data engine: sharded generation, streaming dataset,
shared-memory allreduce, and data-parallel training.

The suite pins the three determinism contracts the engine is built on:

* generation is **worker-invariant** -- shard bytes depend only on the
  seed tree, never on the process count or scheduling;
* normalization statistics merged from the manifest moments are
  **exact** -- equal to computing them over the concatenated arrays;
* ``fit_data_parallel`` at ``processes=W`` is **bit-identical** to the
  ``processes=1`` sequential reference (losses AND parameters).
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.campaign import (
    DataParallelConfig,
    DomainRandomization,
    GradBus,
    ShardedDataset,
    average_vectors,
    fit_data_parallel,
    generate_campaign,
    plan_shards,
    read_manifest,
    shard_filename,
)
from repro.config import (
    CampaignConfig,
    DspConfig,
    ModelConfig,
    RadarConfig,
    TrainConfig,
)
from repro.core.regressor import HandJointRegressor
from repro.core.training import Trainer
from repro.errors import CampaignError

RADAR = RadarConfig(samples_per_chirp=32, chirp_loops=8)
DSP = DspConfig(
    range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
    segment_frames=2,
)
MODEL = ModelConfig(
    base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
    lstm_hidden=16,
)
CAMPAIGN = CampaignConfig(num_users=2, segments_per_user=8)

NUM_SHARDS = 3
SEGMENTS_PER_SHARD = 4
SEED = 13


def _digest(path):
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


def _generate(directory, workers=1, seed=SEED):
    return generate_campaign(
        str(directory), NUM_SHARDS, SEGMENTS_PER_SHARD,
        radar=RADAR, dsp=DSP, campaign=CAMPAIGN,
        seed=seed, workers=workers,
    )


@pytest.fixture(scope="module")
def campaign_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("campaign")
    _generate(directory)
    return directory


class TestSharding:
    def test_plan_is_deterministic_and_recorded(self):
        a = plan_shards(5, 4, 7)
        b = plan_shards(5, 4, 7)
        assert len(a) == 4
        for spec_a, spec_b in zip(a, b):
            assert spec_a.entropy == spec_b.entropy
            assert spec_a.spawn_key == spec_b.spawn_key
            assert spec_a.num_segments == 7
            # The recorded (entropy, spawn_key) must rebuild the exact
            # child stream.
            rng_a = np.random.default_rng(spec_a.seed_sequence())
            rng_b = np.random.default_rng(spec_b.seed_sequence())
            assert rng_a.integers(1 << 30) == rng_b.integers(1 << 30)
        # Different seeds, different children.
        other = plan_shards(6, 4, 7)
        assert a[0].entropy != other[0].entropy

    def test_manifest_round_trip(self, campaign_dir):
        manifest = read_manifest(str(campaign_dir))
        assert manifest["seed"] == SEED
        assert manifest["total_segments"] == NUM_SHARDS * SEGMENTS_PER_SHARD
        assert len(manifest["shards"]) == NUM_SHARDS
        for index, record in enumerate(manifest["shards"]):
            assert record["index"] == index
            assert record["file"] == shard_filename(index)
            assert os.path.exists(
                os.path.join(str(campaign_dir), record["file"])
            )
            assert record["num_segments"] == SEGMENTS_PER_SHARD
        # The config block is hashed; the hash matches the block.
        blob = json.dumps(
            manifest["config"], sort_keys=True, separators=(",", ":")
        ).encode()
        assert (
            manifest["config_sha256"] == hashlib.sha256(blob).hexdigest()
        )

    def test_read_manifest_rejects_missing_shard(self, tmp_path):
        _generate(tmp_path / "broken")
        os.remove(tmp_path / "broken" / shard_filename(1))
        with pytest.raises(CampaignError):
            read_manifest(str(tmp_path / "broken"))

    def test_randomization_validation(self):
        with pytest.raises(CampaignError):
            DomainRandomization(noise_std_range=(0.0, 0.1))
        with pytest.raises(CampaignError):
            DomainRandomization(glove_rate=1.5)
        with pytest.raises(CampaignError):
            DomainRandomization(environments=())


class TestGeneration:
    def test_worker_count_never_changes_bytes(self, campaign_dir, tmp_path):
        """The headline invariance: 2-process generation produces the
        same shard bytes as the serial run."""
        _generate(tmp_path / "parallel", workers=2)
        for index in range(NUM_SHARDS):
            assert _digest(
                tmp_path / "parallel" / shard_filename(index)
            ) == _digest(
                os.path.join(str(campaign_dir), shard_filename(index))
            ), f"shard {index} diverged between worker counts"

    def test_single_shard_regenerates_identically(
        self, campaign_dir, tmp_path
    ):
        """Any one shard can be rebuilt alone from its manifest seeds."""
        from repro.campaign.generate import _generate_shard
        from repro.campaign.sharding import ShardSpec

        manifest = read_manifest(str(campaign_dir))
        record = manifest["shards"][2]
        spec = ShardSpec(
            index=record["index"],
            entropy=record["entropy"],
            spawn_key=tuple(record["spawn_key"]),
            num_segments=record["num_segments"],
        )
        _generate_shard((
            str(tmp_path), spec, RADAR, DSP, CAMPAIGN,
            DomainRandomization(),
        ))
        assert _digest(tmp_path / shard_filename(2)) == _digest(
            os.path.join(str(campaign_dir), shard_filename(2))
        )

    def test_merged_stats_are_exact(self, campaign_dir):
        """Manifest-moment normalization equals whole-array statistics."""
        dataset = ShardedDataset(str(campaign_dir))
        full = dataset.materialize()
        segments = np.asarray(full.segments, dtype=np.float64)
        labels = np.asarray(full.labels, dtype=np.float64)
        mean, std = dataset.input_stats()
        assert mean == pytest.approx(float(segments.mean()), rel=1e-12)
        # The streaming sumsq - mean^2 formula loses a few digits to
        # cancellation; it is deterministic, just not two-pass-exact.
        assert std == pytest.approx(float(segments.std()), rel=1e-6)
        label_mean, label_std = dataset.label_stats()
        np.testing.assert_allclose(
            label_mean, labels.mean(axis=0), rtol=1e-12
        )
        np.testing.assert_allclose(
            label_std, labels.std(axis=0), rtol=1e-6, atol=1e-12
        )


class TestShardedDataset:
    def test_shapes_and_lazy_mmap(self, campaign_dir):
        dataset = ShardedDataset(str(campaign_dir))
        assert len(dataset) == NUM_SHARDS * SEGMENTS_PER_SHARD
        assert dataset.num_shards == NUM_SHARDS
        assert dataset.shard_lengths == [SEGMENTS_PER_SHARD] * NUM_SHARDS
        shard = dataset.shard(0)
        assert isinstance(shard.segments, np.memmap)
        assert isinstance(shard.labels, np.memmap)
        with pytest.raises(CampaignError):
            dataset.shard(NUM_SHARDS)

    def test_shard_slice_partitions_round_robin(self, campaign_dir):
        dataset = ShardedDataset(str(campaign_dir))
        assert dataset.shard_slice(0, 2) == [0, 2]
        assert dataset.shard_slice(1, 2) == [1]
        covered = sorted(
            i for r in range(2) for i in dataset.shard_slice(r, 2)
        )
        assert covered == list(range(NUM_SHARDS))
        with pytest.raises(CampaignError):
            dataset.shard_slice(2, 2)

    def test_materialize_matches_shard_order(self, campaign_dir):
        dataset = ShardedDataset(str(campaign_dir))
        full = dataset.materialize()
        assert len(full) == len(dataset)
        offset = 0
        for index in range(dataset.num_shards):
            shard = dataset.shard(index)
            np.testing.assert_array_equal(
                full.segments[offset:offset + len(shard)],
                np.asarray(shard.segments),
            )
            offset += len(shard)

    def test_prefetch_publishes_metrics(self, campaign_dir):
        from repro.obs import metrics as obs_metrics

        hits = obs_metrics.counter("campaign.prefetch.hits")
        waits = obs_metrics.counter("campaign.prefetch.waits")
        loads = obs_metrics.histogram("campaign.prefetch.load_s")
        before = (hits.value, waits.value, loads.count)
        dataset = ShardedDataset(str(campaign_dir), prefetch_depth=2)
        seen = [index for index, _ in dataset.iter_shards()]
        assert seen == list(range(NUM_SHARDS))
        assert loads.count == before[2] + NUM_SHARDS
        # Every shard request resolved as either a hit or a wait.
        consumed = (
            (hits.value - before[0]) + (waits.value - before[1])
        )
        assert consumed >= NUM_SHARDS

    def test_prefetch_surfaces_loader_errors(self, campaign_dir):
        from repro.campaign.dataset import ShardPrefetcher

        def exploding(index):
            raise ValueError(f"boom {index}")

        with pytest.raises(CampaignError, match="boom"):
            list(ShardPrefetcher(exploding, [0, 1]))
        with pytest.raises(CampaignError):
            ShardPrefetcher(exploding, [0], depth=0)

    def test_sample_segments_for_calibration(self, campaign_dir):
        dataset = ShardedDataset(str(campaign_dir))
        sample = dataset.sample_segments(5, seed=1)
        assert sample.shape[0] == 5
        assert sample.shape[1:] == dataset.shard(0).segments.shape[1:]
        np.testing.assert_array_equal(
            sample, dataset.sample_segments(5, seed=1)
        )

    def test_dsp_config_round_trip(self, campaign_dir):
        dataset = ShardedDataset(str(campaign_dir))
        assert dataset.dsp_config() == DSP


class TestGradBus:
    def test_publish_gather_matches_reference_reduction(self):
        rng = np.random.default_rng(0)
        vectors = [
            rng.normal(size=11).astype(np.float32) for _ in range(3)
        ]
        with GradBus(3, 11) as bus:
            for rank, vector in enumerate(vectors):
                bus.publish(rank, 7, (1.0 + rank, 0.5, 0.25), vector)
            averaged, losses = bus.gather(7)
            np.testing.assert_array_equal(
                averaged, average_vectors(vectors)
            )
            assert losses[2][0] == 3.0
            assert losses[0][1] == 0.5

    def test_gather_detects_lost_lockstep(self):
        with GradBus(2, 4) as bus:
            bus.publish(0, 3, (0.0, 0.0, 0.0), np.zeros(4, np.float32))
            bus.publish(1, 2, (0.0, 0.0, 0.0), np.zeros(4, np.float32))
            with pytest.raises(CampaignError, match="lockstep"):
                bus.gather(3)

    def test_attach_validates_geometry(self):
        with GradBus(2, 8) as bus:
            attached = GradBus(2, 8, name=bus.name, create=False)
            attached.publish(
                1, 1, (0.0, 0.0, 0.0), np.ones(8, np.float32)
            )
            assert not bus.stopped()
            bus.signal_stop()
            assert attached.stopped()
            attached.close()
            with pytest.raises(CampaignError, match="geometry"):
                GradBus(2, 9, name=bus.name, create=False)

    def test_average_vectors_fixed_order(self):
        with pytest.raises(CampaignError):
            average_vectors([])
        ones = np.ones(3, np.float32)
        np.testing.assert_array_equal(
            average_vectors([ones, 3 * ones]), 2 * ones
        )


class TestDataParallelConfig:
    def test_validation(self):
        with pytest.raises(CampaignError):
            DataParallelConfig(world_size=0)
        with pytest.raises(CampaignError):
            DataParallelConfig(world_size=4, processes=2)
        with pytest.raises(CampaignError):
            DataParallelConfig(barrier_timeout_s=0)
        assert DataParallelConfig(world_size=3, processes=3).processes == 3


class TestDataParallelTraining:
    CONFIG = dict(epochs=2, batch_size=2, seed=4, log_every=1000)

    def _fit(self, campaign_dir, processes, **kwargs):
        regressor = HandJointRegressor(DSP, MODEL, seed=1)
        result = fit_data_parallel(
            regressor,
            ShardedDataset(str(campaign_dir)),
            TrainConfig(**self.CONFIG),
            DataParallelConfig(world_size=2, processes=processes),
            **kwargs,
        )
        return regressor, result

    def test_two_workers_match_sequential_bit_identically(
        self, campaign_dir
    ):
        """The acceptance criterion: W=2 with real forked workers lands
        on exactly the sequential reference's loss trajectory and
        parameters."""
        seq_reg, seq = self._fit(campaign_dir, processes=1)
        par_reg, par = self._fit(campaign_dir, processes=2)
        assert par.total_loss == seq.total_loss
        assert par.l3d == seq.l3d
        assert par.lkine == seq.lkine
        assert par.final_loss == seq.final_loss
        state_seq = seq_reg.state_dict()
        state_par = par_reg.state_dict()
        assert set(state_seq) == set(state_par)
        for key in state_seq:
            # Batch-norm running buffers legitimately differ (rank 0
            # only forwards its own stream in parallel mode); trained
            # parameters must not.
            if "running_" in key:
                continue
            assert np.array_equal(state_seq[key], state_par[key]), key

    def test_world_size_one_matches_shapes(self, campaign_dir):
        regressor = HandJointRegressor(DSP, MODEL, seed=1)
        result = fit_data_parallel(
            regressor,
            ShardedDataset(str(campaign_dir)),
            TrainConfig(**self.CONFIG),
            DataParallelConfig(world_size=1, processes=1),
        )
        assert result.epochs == self.CONFIG["epochs"]
        assert len(result.epoch_stats) == self.CONFIG["epochs"]
        for stats in result.epoch_stats:
            assert stats["segments_per_s"] > 0

    def test_trainer_delegates(self, campaign_dir):
        regressor = HandJointRegressor(DSP, MODEL, seed=1)
        trainer = Trainer(regressor, TrainConfig(**self.CONFIG))
        result = trainer.fit_data_parallel(
            ShardedDataset(str(campaign_dir)),
            DataParallelConfig(world_size=2, processes=1),
        )
        _, reference = self._fit(campaign_dir, processes=1)
        assert result.total_loss == reference.total_loss

    def test_too_few_shards_for_world_size(self, campaign_dir):
        regressor = HandJointRegressor(DSP, MODEL, seed=1)
        with pytest.raises(CampaignError, match="shards"):
            fit_data_parallel(
                regressor,
                ShardedDataset(str(campaign_dir)),
                TrainConfig(**self.CONFIG),
                DataParallelConfig(world_size=8, processes=1),
            )

    def test_in_memory_dataset_path(self, campaign_dir):
        """fit_data_parallel accepts a plain HandPoseDataset too, and
        keeps the parallel/sequential bit-identity."""
        full = ShardedDataset(str(campaign_dir)).materialize()

        def fit(processes):
            regressor = HandJointRegressor(DSP, MODEL, seed=1)
            return fit_data_parallel(
                regressor, full, TrainConfig(**self.CONFIG),
                DataParallelConfig(world_size=2, processes=processes),
            )

        assert fit(1).total_loss == fit(2).total_loss
