"""Tests of the autograd tensor: ops, broadcasting, graph mechanics."""

import numpy as np
import pytest

from repro.errors import GradientError, ModelError
from repro.nn.tensor import Tensor, concat, no_grad, stack

from conftest import numeric_gradient


def leaf(data):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=True)


def test_scalar_backward():
    x = leaf([2.0, 3.0])
    y = (x * x).sum()
    y.backward()
    assert np.allclose(x.grad, [4.0, 6.0])


def test_grad_accumulates_across_paths():
    x = leaf([1.0])
    y = x * 2.0 + x * 3.0
    y.sum().backward()
    assert np.allclose(x.grad, [5.0])


def test_backward_requires_scalar_without_grad():
    x = leaf([1.0, 2.0])
    y = x * 2.0
    with pytest.raises(GradientError):
        y.backward()


def test_backward_with_explicit_gradient():
    x = leaf([1.0, 2.0])
    y = x * 3.0
    y.backward(np.array([1.0, 10.0]))
    assert np.allclose(x.grad, [3.0, 30.0])


def test_backward_gradient_shape_checked():
    x = leaf([1.0, 2.0])
    y = x * 3.0
    with pytest.raises(GradientError):
        y.backward(np.ones(3))


def test_backward_on_leaf_without_grad():
    x = Tensor([1.0])
    with pytest.raises(GradientError):
        x.backward()


def test_broadcasting_add_unbroadcasts_grad():
    x = leaf(np.ones((3, 4)))
    b = leaf(np.ones(4))
    (x + b).sum().backward()
    assert x.grad.shape == (3, 4)
    assert np.allclose(b.grad, 3.0)


def test_broadcasting_mul_keepdims_axis():
    x = leaf(np.ones((2, 3)))
    s = leaf(np.ones((2, 1)))
    (x * s).sum().backward()
    assert s.grad.shape == (2, 1)
    assert np.allclose(s.grad, 3.0)


def test_division_gradients():
    a = leaf([4.0])
    b = leaf([2.0])
    (a / b).sum().backward()
    assert np.allclose(a.grad, [0.5])
    assert np.allclose(b.grad, [-1.0])


def test_pow_gradient():
    x = leaf([3.0])
    (x**2).sum().backward()
    assert np.allclose(x.grad, [6.0])
    with pytest.raises(ModelError):
        x ** np.ones(2)


def test_rsub_rdiv():
    x = leaf([2.0])
    (1.0 - x).sum().backward()
    assert np.allclose(x.grad, [-1.0])
    x.zero_grad()
    (1.0 / x).sum().backward()
    assert np.allclose(x.grad, [-0.25])


def test_matmul_gradients_match_numeric():
    rng = np.random.default_rng(0)
    a = leaf(rng.normal(size=(3, 4)))
    b = leaf(rng.normal(size=(4, 2)))

    def loss():
        a.grad = None
        b.grad = None
        return float(((a @ b) ** 2).sum().data)

    out = (a @ b) ** 2
    out.sum().backward()
    ga, gb = a.grad.copy(), b.grad.copy()
    assert np.allclose(ga, numeric_gradient(loss, a.data), atol=1e-5)
    assert np.allclose(gb, numeric_gradient(loss, b.data), atol=1e-5)


def test_nonlinearity_gradients():
    rng = np.random.default_rng(1)
    for op in ("exp", "tanh", "sigmoid", "relu"):
        x = leaf(rng.normal(size=(5,)))

        def loss():
            x.grad = None
            return float((getattr(x, op)() ** 2).sum().data)

        (getattr(x, op)() ** 2).sum().backward()
        grad = x.grad.copy()
        assert np.allclose(
            grad, numeric_gradient(loss, x.data), atol=1e-5
        ), op


def test_log_sqrt():
    x = leaf([4.0])
    x.log().sum().backward()
    assert np.allclose(x.grad, [0.25])
    x.zero_grad()
    x.sqrt().sum().backward()
    assert np.allclose(x.grad, [0.25])


def test_clip_min_gradient_masked():
    x = leaf([-1.0, 2.0])
    x.clip_min(0.0).sum().backward()
    assert np.allclose(x.grad, [0.0, 1.0])


def test_sum_axis_keepdims():
    x = leaf(np.ones((2, 3, 4)))
    y = x.sum(axis=(0, 2), keepdims=False)
    assert y.shape == (3,)
    y.sum().backward()
    assert np.allclose(x.grad, 1.0)


def test_mean_gradient():
    x = leaf(np.ones((4, 5)))
    x.mean().backward()
    assert np.allclose(x.grad, 1.0 / 20)
    x.zero_grad()
    x.mean(axis=1).sum().backward()
    assert np.allclose(x.grad, 1.0 / 5)


def test_max_splits_ties():
    x = leaf([[1.0, 1.0, 0.0]])
    x.max(axis=1).sum().backward()
    assert np.allclose(x.grad, [[0.5, 0.5, 0.0]])


def test_reshape_transpose_roundtrip_gradient():
    x = leaf(np.arange(6.0).reshape(2, 3))
    y = x.reshape(3, 2).transpose(1, 0)
    (y * y).sum().backward()
    assert np.allclose(x.grad, 2 * x.data)


def test_getitem_gradient_scatters():
    x = leaf(np.arange(5.0))
    x[1:3].sum().backward()
    assert np.allclose(x.grad, [0, 1, 1, 0, 0])


def test_pad2d_gradient():
    x = leaf(np.ones((1, 1, 2, 2)))
    y = x.pad2d(1)
    assert y.shape == (1, 1, 4, 4)
    y.sum().backward()
    assert np.allclose(x.grad, 1.0)
    with pytest.raises(ModelError):
        x.pad2d(-1)


def test_concat_and_stack_gradients():
    a = leaf([1.0, 2.0])
    b = leaf([3.0])
    concat([a, b]).sum().backward()
    assert np.allclose(a.grad, 1.0)
    assert np.allclose(b.grad, 1.0)
    a.zero_grad()
    c = leaf([1.0, 2.0])
    stack([a, c], axis=0).sum().backward()
    assert np.allclose(a.grad, 1.0)
    assert np.allclose(c.grad, 1.0)
    with pytest.raises(ModelError):
        concat([])


def test_no_grad_blocks_recording():
    x = leaf([1.0])
    with no_grad():
        y = x * 2.0
    assert not y.requires_grad
    assert y._parents == ()


def test_detach_breaks_graph():
    x = leaf([1.0])
    y = (x * 2.0).detach()
    assert not y.requires_grad


def test_dtype_preservation():
    assert Tensor(np.zeros(3, dtype=np.float64)).data.dtype == np.float64
    assert Tensor(np.zeros(3, dtype=np.float32)).data.dtype == np.float32
    assert Tensor(np.zeros(3, dtype=np.int64)).data.dtype == np.float32
    assert Tensor([1, 2]).data.dtype == np.float32
    # 0-d numpy scalars (e.g. from .sum()) keep their precision.
    assert Tensor(np.float64(1.0)).data.dtype == np.float64


def test_deep_graph_no_recursion_error():
    x = leaf([1.0])
    y = x
    for _ in range(5000):
        y = y + 1.0
    y.sum().backward()
    assert np.allclose(x.grad, [1.0])
