"""Tests of continuous gesture animation."""

import numpy as np
import pytest

from repro.errors import KinematicsError
from repro.hand.animation import (
    GestureSequence,
    Keyframe,
    sample_gesture_sequence,
)
from repro.hand.gestures import GESTURE_LIBRARY


def make_sequence(**kwargs):
    return GestureSequence(
        [Keyframe(0.0, "fist"), Keyframe(1.0, "open_palm")],
        tremor_amplitude_m=0.0,
        drift_amplitude_m=0.0,
        **kwargs,
    )


def test_keyframe_validates_gesture():
    with pytest.raises(KinematicsError):
        Keyframe(0.0, "unknown")


def test_keyframe_validates_time():
    with pytest.raises(KinematicsError):
        Keyframe(-1.0, "fist")


def test_sequence_requires_increasing_times():
    with pytest.raises(KinematicsError):
        GestureSequence([Keyframe(1.0, "fist"), Keyframe(0.5, "open_palm")])


def test_pose_at_endpoints_match_keyframes():
    seq = make_sequence()
    start = seq.pose_at(0.0)
    end = seq.pose_at(1.0)
    assert np.allclose(start.finger_angles, GESTURE_LIBRARY["fist"])
    assert np.allclose(end.finger_angles, GESTURE_LIBRARY["open_palm"])


def test_pose_clamps_outside_timeline():
    seq = make_sequence()
    before = seq.pose_at(-5.0)
    after = seq.pose_at(10.0)
    assert np.allclose(before.finger_angles, GESTURE_LIBRARY["fist"])
    assert np.allclose(after.finger_angles, GESTURE_LIBRARY["open_palm"])


def test_transition_is_monotone_and_smooth():
    seq = make_sequence()
    times = np.linspace(0.0, 1.0, 21)
    # Index MCP flexion goes from curled (fist) to 0 (open).
    flexions = [seq.pose_at(t).finger_angles[1, 0] for t in times]
    diffs = np.diff(flexions)
    assert np.all(diffs <= 1e-12)
    # Smoothstep: zero slope at the ends.
    assert abs(flexions[1] - flexions[0]) < abs(flexions[11] - flexions[10])


def test_tremor_moves_wrist_but_small():
    seq = GestureSequence(
        [Keyframe(0.0, "fist")],
        base_position=np.array([0.3, 0.0, 0.0]),
        tremor_amplitude_m=0.002,
        drift_amplitude_m=0.004,
        seed=1,
    )
    positions = np.array([seq.pose_at(t).wrist_position
                          for t in np.linspace(0, 2, 50)])
    deviations = np.linalg.norm(positions - [0.3, 0, 0], axis=1)
    assert deviations.max() > 1e-4  # it moves
    assert deviations.max() < 0.02  # but stays near the base


def test_sample_returns_requested_frames():
    seq = make_sequence()
    poses = seq.sample(0.05, 12)
    assert len(poses) == 12


def test_sample_validates_arguments():
    seq = make_sequence()
    with pytest.raises(KinematicsError):
        seq.sample(0.0, 5)
    with pytest.raises(KinematicsError):
        seq.sample(0.05, 0)


def test_sample_gesture_sequence_no_repeats():
    rng = np.random.default_rng(7)
    seq = sample_gesture_sequence(
        rng, ["fist", "open_palm", "point"], num_keyframes=6
    )
    names = [kf.gesture for kf in seq.keyframes]
    assert len(names) == 6
    for a, b in zip(names, names[1:]):
        assert a != b


def test_sample_gesture_sequence_deterministic():
    seq_a = sample_gesture_sequence(
        np.random.default_rng(3), ["fist", "open_palm"], num_keyframes=4
    )
    seq_b = sample_gesture_sequence(
        np.random.default_rng(3), ["fist", "open_palm"], num_keyframes=4
    )
    assert [k.gesture for k in seq_a.keyframes] == [
        k.gesture for k in seq_b.keyframes
    ]
    assert seq_a.duration_s == seq_b.duration_s


def test_sample_gesture_sequence_validates():
    rng = np.random.default_rng(0)
    with pytest.raises(KinematicsError):
        sample_gesture_sequence(rng, [], num_keyframes=3)
    with pytest.raises(KinematicsError):
        sample_gesture_sequence(rng, ["fist"], num_keyframes=0)
