"""Shared fixtures: small configurations that keep tests fast while
exercising the same code paths as the full-size system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    CampaignConfig,
    DspConfig,
    ModelConfig,
    RadarConfig,
    TrainConfig,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def small_radar():
    return RadarConfig(samples_per_chirp=32, chirp_loops=8)


@pytest.fixture
def small_dsp():
    return DspConfig(
        range_bins=16,
        doppler_bins=4,
        azimuth_bins=8,
        elevation_bins=8,
        segment_frames=2,
    )


@pytest.fixture
def small_model():
    return ModelConfig(
        base_channels=4,
        hourglass_depth=1,
        num_blocks=1,
        feature_dim=16,
        lstm_hidden=16,
    )


@pytest.fixture
def small_train():
    return TrainConfig(epochs=1, batch_size=4, log_every=1000)


@pytest.fixture
def small_campaign():
    return CampaignConfig(num_users=2, segments_per_user=4)


@pytest.fixture
def fault_injector():
    """Factory for seeded :class:`~repro.resilience.FaultInjector`\\ s.

    Usage: ``injector = fault_injector(frame_corrupt_rate=0.1, seed=3)``.
    Every injector is deterministic; re-running a test replays the same
    fault schedule.
    """
    from repro.resilience import FaultInjector

    def make(**overrides):
        overrides.setdefault("seed", 0)
        return FaultInjector(**overrides)

    return make


def numeric_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` w.r.t. ``array``
    (mutated in place and restored)."""
    grad = np.zeros_like(array)
    for index in np.ndindex(*array.shape):
        original = array[index]
        array[index] = original + eps
        f_plus = fn()
        array[index] = original - eps
        f_minus = fn()
        array[index] = original
        grad[index] = (f_plus - f_minus) / (2.0 * eps)
    return grad
