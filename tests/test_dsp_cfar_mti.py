"""Tests of CFAR hand localisation and MTI clutter removal."""

import numpy as np
import pytest

from repro.config import DspConfig, RadarConfig
from repro.dsp.cfar import (
    CfarConfig,
    adaptive_hand_band,
    ca_cfar,
    detect_peaks,
    locate_hand,
)
from repro.dsp.fft import range_fft
from repro.dsp.mti import (
    RecursiveClutterFilter,
    mti_highpass,
    two_pulse_canceller,
)
from repro.errors import SignalProcessingError
from repro.radar.antenna import iwr1443_array
from repro.radar.chirp import synthesize_frame
from repro.radar.scene import Scatterers


def synthetic_profile(peaks, n=64, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    profile = np.abs(rng.normal(0, noise, n))
    for idx, power in peaks:
        profile[idx] += power
    return profile


# ----------------------------------------------------------------------
# CFAR
# ----------------------------------------------------------------------
def test_cfar_detects_strong_peak():
    profile = synthetic_profile([(20, 5.0)])
    mask = ca_cfar(profile)
    assert mask[20]
    assert mask.sum() <= 4


def test_cfar_ignores_flat_noise():
    profile = synthetic_profile([])
    assert ca_cfar(profile, CfarConfig(threshold_factor=6.0)).sum() == 0


def test_cfar_validates():
    with pytest.raises(SignalProcessingError):
        ca_cfar(np.ones((4, 4)))
    with pytest.raises(SignalProcessingError):
        ca_cfar(-np.ones(32))
    with pytest.raises(SignalProcessingError):
        ca_cfar(np.ones(5), CfarConfig(training_cells=6))
    with pytest.raises(SignalProcessingError):
        CfarConfig(threshold_factor=0)


def test_detect_peaks_returns_local_maxima():
    profile = synthetic_profile([(20, 5.0), (21, 4.0), (40, 6.0)])
    peaks = detect_peaks(profile)
    assert 20 in peaks
    assert 40 in peaks
    assert 21 not in peaks  # shoulder of the 20-peak


def test_locate_hand_first_dominant_peak():
    """With hand at bin 8 and body at bin 18, the hand (closer) wins."""
    profile = synthetic_profile([(8, 4.0), (18, 6.0)])
    range_axis = np.arange(64) * 0.0375
    assert locate_hand(profile, range_axis) == pytest.approx(8 * 0.0375)


def test_locate_hand_skips_leakage_bin():
    profile = synthetic_profile([(1, 9.0), (10, 4.0)])
    range_axis = np.arange(64) * 0.0375
    assert locate_hand(profile, range_axis, min_range_m=0.08) == (
        pytest.approx(10 * 0.0375)
    )


def test_locate_hand_none_when_empty():
    profile = synthetic_profile([])
    range_axis = np.arange(64) * 0.0375
    assert locate_hand(
        profile, range_axis, CfarConfig(threshold_factor=8.0)
    ) is None


def test_locate_hand_on_simulated_radar_data():
    radar = RadarConfig(noise_std=0.01)
    dsp = DspConfig()
    array = iwr1443_array(radar)
    hand = Scatterers(
        positions=np.array([[0.33, 0.0, 0.0]]),
        velocities=np.zeros((1, 3)),
        amplitudes=np.array([1.0]),
    )
    data = synthesize_frame(radar, array, hand)
    spectrum = range_fft(data, radar, dsp)
    profile = np.abs(spectrum).sum(axis=(0, 1))
    range_axis = np.arange(dsp.range_bins) * radar.range_resolution_m
    located = locate_hand(profile, range_axis)
    assert located == pytest.approx(0.33, abs=radar.range_resolution_m)


def test_adaptive_hand_band():
    profile = synthetic_profile([(8, 5.0)])
    range_axis = np.arange(64) * 0.0375
    lo, hi = adaptive_hand_band(profile, range_axis, half_width_m=0.1)
    assert lo == pytest.approx(0.3 - 0.1, abs=0.02)
    assert hi == pytest.approx(0.3 + 0.1, abs=0.02)


def test_adaptive_hand_band_fallback():
    profile = synthetic_profile([])
    range_axis = np.arange(64) * 0.0375
    band = adaptive_hand_band(
        profile, range_axis, config=CfarConfig(threshold_factor=9.0),
        fallback=(0.1, 0.5),
    )
    assert band == (0.1, 0.5)
    with pytest.raises(SignalProcessingError):
        adaptive_hand_band(profile, range_axis, half_width_m=0.0)


# ----------------------------------------------------------------------
# MTI
# ----------------------------------------------------------------------
def test_mti_removes_static_keeps_moving():
    radar = RadarConfig(noise_std=0.0)
    array = iwr1443_array(radar)
    static = Scatterers(
        positions=np.array([[0.4, 0.0, 0.0]]),
        velocities=np.zeros((1, 3)),
        amplitudes=np.array([1.0]),
    )
    moving = Scatterers(
        positions=np.array([[0.3, 0.0, 0.0]]),
        velocities=np.array([[0.8, 0.0, 0.0]]),
        amplitudes=np.array([1.0]),
    )
    static_data = synthesize_frame(radar, array, static)
    moving_data = synthesize_frame(radar, array, moving)
    static_out = mti_highpass(static_data)
    moving_out = mti_highpass(moving_data)
    assert np.abs(static_out).max() < 1e-10 * np.abs(static_data).max() + 1e-12
    assert np.abs(moving_out).mean() > 0.3 * np.abs(moving_data).mean()


def test_two_pulse_canceller_shape_and_cancellation():
    data = np.ones((12, 16, 64), dtype=complex)
    out = two_pulse_canceller(data)
    assert out.shape == (12, 15, 64)
    assert np.abs(out).max() == 0.0


def test_mti_validates():
    with pytest.raises(SignalProcessingError):
        mti_highpass(np.ones(5))
    with pytest.raises(SignalProcessingError):
        two_pulse_canceller(np.ones((12, 1, 64)))


def test_recursive_clutter_filter_adapts():
    rng = np.random.default_rng(0)
    static = rng.normal(size=(12, 8, 32)) + 1j * rng.normal(size=(12, 8, 32))
    filt = RecursiveClutterFilter(alpha=0.3)
    residuals = []
    for _ in range(20):
        out = filt.process(static)
        residuals.append(np.abs(out).mean())
    # Static scene: residual shrinks as the clutter map converges.
    assert residuals[-1] < 0.2 * residuals[1] + 1e-12


def test_recursive_clutter_filter_reset_and_validation():
    filt = RecursiveClutterFilter(alpha=0.1)
    filt.process(np.ones((2, 4, 8), dtype=complex))
    filt.reset()
    assert filt._clutter is None
    with pytest.raises(SignalProcessingError):
        RecursiveClutterFilter(alpha=0.0)
