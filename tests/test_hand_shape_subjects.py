"""Tests of hand anthropometry and synthetic subjects."""

import numpy as np
import pytest

from repro.errors import ConfigError, KinematicsError
from repro.hand.shape import HandShape
from repro.hand.subjects import make_subjects


def test_default_shape_has_plausible_hand_length():
    shape = HandShape()
    assert 0.16 < shape.hand_length_m < 0.22


def test_from_scale_scales_lengths_linearly():
    small = HandShape.from_scale(0.9)
    large = HandShape.from_scale(1.1)
    ratio = large.finger_length_m("middle") / small.finger_length_m("middle")
    assert ratio == pytest.approx(1.1 / 0.9, rel=1e-9)


def test_from_scale_rejects_non_positive():
    with pytest.raises(KinematicsError):
        HandShape.from_scale(0.0)


def test_shape_rejects_missing_finger():
    lengths = dict(HandShape().phalange_lengths)
    del lengths["pinky"]
    with pytest.raises(KinematicsError):
        HandShape(phalange_lengths=lengths)


def test_shape_rejects_non_positive_length():
    lengths = dict(HandShape().phalange_lengths)
    lengths["index"] = (0.04, -0.01, 0.02)
    with pytest.raises(KinematicsError):
        HandShape(phalange_lengths=lengths)


def test_finger_length_unknown_finger():
    with pytest.raises(KeyError):
        HandShape().finger_length_m("tail")


def test_make_subjects_panel_matches_paper():
    subjects = make_subjects(10)
    assert len(subjects) == 10
    genders = [s.gender for s in subjects]
    assert genders.count("male") == 5
    assert genders.count("female") == 5
    for s in subjects:
        assert 1.65 <= s.height_m <= 1.85
        assert 0.88 <= s.hand_scale <= 1.12


def test_make_subjects_deterministic():
    a = make_subjects(5, seed=9)
    b = make_subjects(5, seed=9)
    assert all(x == y for x, y in zip(a, b))


def test_make_subjects_distinct_across_seeds():
    a = make_subjects(5, seed=1)
    b = make_subjects(5, seed=2)
    assert any(x.height_m != y.height_m for x, y in zip(a, b))


def test_make_subjects_validates_count():
    with pytest.raises(ConfigError):
        make_subjects(0)


def test_subject_hand_shape_scales_with_subject():
    subjects = make_subjects(10)
    big = max(subjects, key=lambda s: s.hand_scale)
    small = min(subjects, key=lambda s: s.hand_scale)
    assert (
        big.hand_shape().hand_length_m > small.hand_shape().hand_length_m
    )
