"""Tests of the LSTM and the three attention mechanisms."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.attention import (
    FrameAttention,
    SpatialAttention,
    VelocityChannelAttention,
)
from repro.nn.rnn import LSTM
from repro.nn.tensor import Tensor


def test_lstm_shapes():
    lstm = LSTM(5, 7)
    x = Tensor(np.random.default_rng(0).normal(size=(3, 4, 5)))
    out, (h, c) = lstm(x)
    assert out.shape == (3, 4, 7)
    assert h.shape == (3, 7)
    assert c.shape == (3, 7)


def test_lstm_final_output_matches_last_step():
    lstm = LSTM(5, 7)
    x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 5)))
    out, (h, _) = lstm(x)
    assert np.allclose(out.data[:, -1, :], h.data)


def test_lstm_state_carries_over():
    lstm = LSTM(4, 6)
    rng = np.random.default_rng(1)
    x = Tensor(rng.normal(size=(2, 6, 4)))
    full, _ = lstm(x)
    first, state = lstm(x[:, :3, :])
    second, _ = lstm(x[:, 3:, :], state=state)
    assert np.allclose(second.data, full.data[:, 3:, :], atol=1e-5)
    assert first.shape == (2, 3, 6)


def test_lstm_gradients_flow_to_all_parameters():
    lstm = LSTM(3, 4)
    x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 3)),
               requires_grad=True)
    out, _ = lstm(x)
    (out * out).sum().backward()
    for param in lstm.parameters():
        assert param.grad is not None
        assert np.abs(param.grad).max() > 0
    assert x.grad is not None


def test_lstm_validates_input():
    lstm = LSTM(3, 4)
    with pytest.raises(ModelError):
        lstm(Tensor(np.ones((2, 3, 5))))


def test_lstm_forget_bias_initialised_to_one():
    lstm = LSTM(3, 4)
    assert np.allclose(lstm.bias.data[4:8], 1.0)
    assert np.allclose(lstm.bias.data[:4], 0.0)


def test_frame_attention_shape_preserved():
    fa = FrameAttention(4)
    x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 3, 8, 8)))
    out = fa(x)
    assert out.shape == x.shape


def test_frame_attention_weights_scale_frames():
    """Output is the input scaled per frame by a factor in (0, 1)."""
    fa = FrameAttention(4)
    x = Tensor(np.abs(np.random.default_rng(0).normal(size=(1, 4, 2, 4, 4))))
    out = fa(x)
    ratio = out.data / np.where(x.data == 0, 1, x.data)
    per_frame = ratio.reshape(4, -1)
    # Constant within each frame.
    assert np.allclose(per_frame.std(axis=1), 0.0, atol=1e-6)
    assert np.all(per_frame[:, 0] > 0)
    assert np.all(per_frame[:, 0] < 1)


def test_frame_attention_validates():
    with pytest.raises(ModelError):
        FrameAttention(4)(Tensor(np.ones((2, 4, 8, 8))))


def test_velocity_attention_scales_channels():
    va = VelocityChannelAttention(3)
    x = Tensor(np.abs(np.random.default_rng(0).normal(size=(2, 3, 5, 5))))
    out = va(x)
    assert out.shape == x.shape
    ratio = (out.data / x.data).reshape(2, 3, -1)
    assert np.allclose(ratio.std(axis=2), 0.0, atol=1e-6)


def test_velocity_attention_validates_channels():
    with pytest.raises(ModelError):
        VelocityChannelAttention(3)(Tensor(np.ones((2, 4, 5, 5))))


def test_spatial_attention_scales_positions():
    sa = SpatialAttention()
    x = Tensor(np.abs(np.random.default_rng(0).normal(size=(2, 3, 6, 6))))
    out = sa(x)
    assert out.shape == x.shape
    ratio = (out.data / x.data)
    # Same weight across channels at each position.
    assert np.allclose(ratio.std(axis=1), 0.0, atol=1e-6)


def test_spatial_attention_validates():
    with pytest.raises(ModelError):
        SpatialAttention(kernel_size=4)
    with pytest.raises(ModelError):
        SpatialAttention()(Tensor(np.ones((2, 3, 4))))


def test_attention_gradients_flow():
    for module, shape in (
        (FrameAttention(2), (1, 2, 2, 4, 4)),
        (VelocityChannelAttention(2), (1, 2, 4, 4)),
        (SpatialAttention(), (1, 2, 4, 4)),
    ):
        x = Tensor(np.random.default_rng(0).normal(size=shape),
                   requires_grad=True)
        (module(x) ** 2).sum().backward()
        assert x.grad is not None
        for param in module.parameters():
            assert param.grad is not None
