"""Tests of the mesh reconstruction stage (shape net, pose net, IK)."""

import numpy as np
import pytest

from repro.core.mesh_recovery import (
    MeshReconstructor,
    PoseParameterNet,
    ShapeParameterNet,
)
from repro.errors import MeshError, ModelError
from repro.hand.gestures import gesture_pose
from repro.hand.kinematics import forward_kinematics
from repro.hand.shape import HandShape
from repro.mano.model import ManoHandModel
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def reconstructor():
    rec = MeshReconstructor(seed=0)
    rec.fit(steps=250, batch_size=24)
    return rec


def test_shape_net_output_shape():
    net = ShapeParameterNet()
    out = net(Tensor(np.zeros((4, 63), dtype=np.float32)))
    assert out.shape == (4, 10)
    with pytest.raises(ModelError):
        net(Tensor(np.zeros((4, 60), dtype=np.float32)))


def test_pose_net_output_shape():
    net = PoseParameterNet()
    out = net(Tensor(np.zeros((4, 123), dtype=np.float32)))
    assert out.shape == (4, 21, 4)
    with pytest.raises(ModelError):
        net(Tensor(np.zeros((4, 63), dtype=np.float32)))


def test_fit_reduces_losses(reconstructor):
    history = reconstructor.fit(steps=30, batch_size=16)
    assert len(history["shape_loss"]) == 30
    # Continued training keeps losses at a low level.
    assert np.mean(history["pose_loss"][-5:]) < 0.5


def test_infer_parameters_shapes(reconstructor):
    joints = ManoHandModel().rest_joints()
    beta, theta = reconstructor.infer_parameters(joints)
    assert beta.shape == (10,)
    assert theta.shape == (21, 3)
    with pytest.raises(MeshError):
        reconstructor.infer_parameters(np.zeros((20, 3)))


def test_reconstruct_recovers_skeleton(reconstructor):
    """Reconstructed mesh joints should approximate the input skeleton --
    the inverse-kinematics consistency the paper's Fig. 8 relies on."""
    shape = HandShape()
    errors = []
    for gesture in ("open_palm", "fist", "grab", "point"):
        # Default orientation: the interaction posture the pipeline's
        # regressed skeletons arrive in (palm facing the radar).
        pose = gesture_pose(gesture, wrist_position=np.zeros(3))
        joints = forward_kinematics(shape, pose)
        result = reconstructor.reconstruct(joints)
        err = np.linalg.norm(result.mesh.joints - joints, axis=1).mean()
        errors.append(err)
    # Self-trained IK: mean joint error well under 2.5 cm.
    assert float(np.mean(errors)) < 0.025


def test_reconstruct_translates_to_wrist(reconstructor):
    joints = ManoHandModel().rest_joints() + np.array([0.3, 0.05, -0.02])
    result = reconstructor.reconstruct(joints)
    assert np.allclose(result.mesh.joints[0], joints[0], atol=1e-9)


def test_reconstruct_reports_timing(reconstructor):
    joints = ManoHandModel().rest_joints()
    result = reconstructor.reconstruct(joints)
    assert result.elapsed_s > 0
    assert result.beta.shape == (10,)
    assert result.theta.shape == (21, 3)
    assert len(result.mesh.vertices) == reconstructor.hand_model.num_vertices
