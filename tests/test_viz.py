"""Tests of the visualisation module: ASCII renders, SVG export, OBJ."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.hand.gestures import gesture_pose
from repro.hand.kinematics import forward_kinematics
from repro.hand.shape import HandShape
from repro.mano.model import ManoHandModel
from repro.viz.ascii_render import ascii_range_profile, ascii_skeleton
from repro.viz.mesh_io import (
    face_normals,
    mesh_summary,
    save_obj,
    surface_area,
)
from repro.viz.svg import mesh_svg, skeleton_svg


@pytest.fixture(scope="module")
def joints():
    pose = gesture_pose("open_palm", wrist_position=np.zeros(3))
    return forward_kinematics(HandShape(), pose)


@pytest.fixture(scope="module")
def mesh():
    return ManoHandModel()()


def test_ascii_skeleton_dimensions(joints):
    art = ascii_skeleton(joints, width=30, height=12)
    lines = art.splitlines()
    assert len(lines) == 12
    assert all(len(line) == 30 for line in lines)


def test_ascii_skeleton_contains_markers(joints):
    art = ascii_skeleton(joints)
    assert "W" in art  # wrist
    for initial in "TIMRP":  # fingertip initials
        assert initial in art


def test_ascii_skeleton_planes(joints):
    front = ascii_skeleton(joints, plane="yz")
    top = ascii_skeleton(joints, plane="xy")
    assert front != top
    with pytest.raises(ReproError):
        ascii_skeleton(joints, plane="qq")
    with pytest.raises(ReproError):
        ascii_skeleton(joints, width=2)
    with pytest.raises(ReproError):
        ascii_skeleton(np.zeros((20, 3)))


def test_ascii_range_profile():
    profile = np.zeros(16)
    profile[5] = 1.0
    art = ascii_range_profile(profile, np.arange(16) * 0.0375, height=4)
    lines = art.splitlines()
    assert len(lines) == 6  # 4 bars + axis + labels
    assert "#" in lines[0]
    assert "(cm)" in lines[-1]
    with pytest.raises(ReproError):
        ascii_range_profile(profile, np.arange(8))
    with pytest.raises(ReproError):
        ascii_range_profile(profile, np.arange(16) * 0.1, height=1)


def test_ascii_range_profile_all_zero():
    art = ascii_range_profile(np.zeros(16), np.arange(16) * 0.1)
    assert "#" not in art


def test_skeleton_svg_structure(joints, tmp_path):
    path = tmp_path / "skeleton.svg"
    document = skeleton_svg(joints, path=str(path))
    assert document.startswith("<svg")
    assert document.count("<line") == 20  # one per phalange
    assert document.count("<circle") == 21
    assert path.exists()
    with pytest.raises(ReproError):
        skeleton_svg(np.zeros((5, 3)))


def test_mesh_svg_structure(mesh, tmp_path):
    path = tmp_path / "mesh.svg"
    document = mesh_svg(mesh.vertices, mesh.faces, path=str(path))
    assert document.count("<polygon") == len(mesh.faces)
    assert path.exists()
    with pytest.raises(ReproError):
        mesh_svg(np.zeros((4, 2)), mesh.faces)
    with pytest.raises(ReproError):
        mesh_svg(mesh.vertices, np.zeros((4, 2), dtype=int))


def test_save_obj_round_trip(mesh, tmp_path):
    path = tmp_path / "hand.obj"
    save_obj(mesh, path)
    text = path.read_text()
    v_lines = [l for l in text.splitlines() if l.startswith("v ")]
    f_lines = [l for l in text.splitlines() if l.startswith("f ")]
    assert len(v_lines) == len(mesh.vertices)
    assert len(f_lines) == len(mesh.faces)
    # OBJ is 1-based: no face index may be 0.
    for line in f_lines:
        indices = [int(token) for token in line.split()[1:]]
        assert min(indices) >= 1
        assert max(indices) <= len(mesh.vertices)


def test_face_normals_unit(mesh):
    normals = face_normals(mesh.vertices, mesh.faces)
    assert normals.shape == (len(mesh.faces), 3)
    assert np.allclose(np.linalg.norm(normals, axis=1), 1.0, atol=1e-9)


def test_surface_area_plausible(mesh):
    area = surface_area(mesh.vertices, mesh.faces)
    # A hand's surface is tens of square centimetres.
    assert 0.005 < area < 0.2


def test_mesh_summary(mesh):
    summary = mesh_summary(mesh)
    assert summary["num_vertices"] == len(mesh.vertices)
    assert summary["num_faces"] == len(mesh.faces)
    assert 0.1 < summary["bbox_y_m"] < 0.4
    assert summary["surface_area_m2"] > 0
