"""Tests of the multi-session inference service runtime
(:mod:`repro.serving`): session lifecycle, micro-batch equivalence,
backpressure policies, cache accounting and metrics."""

import threading
import time

import numpy as np
import pytest

from repro.core.regressor import HandJointRegressor
from repro.core.streaming import StreamingEstimator
from repro.dsp.radar_cube import CubeBuilder
from repro.errors import (
    FrameShapeError,
    QueueFullError,
    ReproError,
    ServingError,
    SessionClosedError,
    UnknownSessionError,
)
from repro.serving import (
    FrameWindow,
    Histogram,
    InferenceServer,
    MetricsRegistry,
    MicroBatcher,
    RequestQueue,
    SegmentCache,
    SegmentRequest,
    ServingConfig,
    Session,
    segment_key,
)


@pytest.fixture(scope="module")
def stack():
    """Shared small builder + (untrained, deterministic) regressor."""
    from repro.config import DspConfig, ModelConfig, RadarConfig

    radar = RadarConfig(samples_per_chirp=32, chirp_loops=8)
    dsp = DspConfig(
        range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
        segment_frames=2,
    )
    model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
        lstm_hidden=16,
    )
    builder = CubeBuilder(radar, dsp)
    regressor = HandJointRegressor(dsp, model, seed=7)
    regressor.eval()
    return builder, regressor


def _raw_frames(builder, count, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(
        size=(
            count,
            builder.array.num_virtual,
            builder.radar.chirp_loops,
            builder.radar.samples_per_chirp,
        )
    )


def _request(session_id, frame_index=0, seed=0, shape=(2, 4, 16, 16)):
    rng = np.random.default_rng(seed)
    return SegmentRequest(
        session_id=session_id,
        frame_index=frame_index,
        segment=rng.normal(size=shape),
    )


# ----------------------------------------------------------------------
# FrameWindow / Session lifecycle
# ----------------------------------------------------------------------
def test_frame_window_emission_schedule():
    window = FrameWindow(segment_frames=3, hop_frames=2)
    frames = [np.full((2, 2, 2), i, dtype=np.float32) for i in range(8)]
    emitted = [window.push(f) is not None for f in frames]
    # Window full at index 2, then every 2nd frame -- but the first
    # emission also waits for the hop counter (2 pushes since start).
    assert emitted == [False, False, True, False, True, False, True,
                       False]
    assert window.fill == 3
    assert window.frame_index == 7
    window.reset()
    assert window.fill == 0
    assert window.frame_index == -1


def test_frame_window_validates():
    with pytest.raises(ServingError):
        FrameWindow(segment_frames=0)
    with pytest.raises(ServingError):
        FrameWindow(segment_frames=2, hop_frames=0)
    window = FrameWindow(segment_frames=2)
    with pytest.raises(FrameShapeError):
        window.push(np.zeros((2, 2)))


def test_session_lifecycle(stack):
    builder, _ = stack
    session = Session(builder, session_id="client-a")
    raw = _raw_frames(builder, 3)
    assert session.feed(raw[0]) is None
    request = session.feed(raw[1])
    assert request is not None
    assert request.session_id == "client-a"
    assert request.frame_index == 1
    assert request.segment.shape == (2, 4, 16, 16)
    assert session.stats()["frames_in"] == 2
    session.close()
    assert session.closed
    with pytest.raises(SessionClosedError):
        session.feed(raw[2])
    with pytest.raises(SessionClosedError):
        session.reset()


def test_session_feed_validates_shape(stack):
    builder, _ = stack
    session = Session(builder)
    with pytest.raises(FrameShapeError):
        session.feed(np.zeros((4, 4)))
    with pytest.raises(FrameShapeError):
        session.feed_cube(np.zeros((4, 4)))


def test_server_session_lifecycle(stack):
    builder, regressor = stack
    server = InferenceServer(builder, regressor)
    sid = server.open_session("s-1")
    assert sid == "s-1"
    with pytest.raises(ServingError):
        server.open_session("s-1")  # duplicate id
    with pytest.raises(UnknownSessionError):
        server.submit("nope", np.zeros((12, 8, 32)))
    raw = _raw_frames(builder, 2)
    assert server.submit(sid, raw[0]) is False  # window not full yet
    assert server.submit(sid, raw[1]) is True
    server.close_session(sid)
    # Closing purges the queued window and later submits fail.
    assert len(server.queue) == 0
    with pytest.raises(SessionClosedError):
        server.submit(sid, raw[0])
    stats = server.stats()
    assert stats["counters"]["sessions_opened"] == 1
    assert stats["counters"]["sessions_closed"] == 1
    assert stats["sessions"][sid]["dropped"] == 1


def test_server_session_limit(stack):
    builder, regressor = stack
    server = InferenceServer(
        builder, regressor, ServingConfig(max_sessions=2)
    )
    server.open_session()
    server.open_session()
    with pytest.raises(ServingError):
        server.open_session()


# ----------------------------------------------------------------------
# Micro-batch equivalence
# ----------------------------------------------------------------------
def test_batched_predict_matches_per_item(stack):
    _, regressor = stack
    rng = np.random.default_rng(3)
    segments = rng.normal(size=(6, 2, 4, 16, 16))
    batched = regressor.predict(segments)
    solo = np.stack([regressor.predict(s[None])[0] for s in segments])
    np.testing.assert_allclose(batched, solo, atol=1e-6)


def test_server_matches_streaming_estimator(stack):
    """>= 4 concurrent sessions through the micro-batched server agree
    with independent single-session StreamingEstimator runs."""
    builder, regressor = stack
    num_sessions, num_frames = 4, 5
    feeds = [
        _raw_frames(builder, num_frames, seed=100 + i)
        for i in range(num_sessions)
    ]

    expected = {}
    for i, feed in enumerate(feeds):
        estimator = StreamingEstimator(builder, regressor, hop_frames=1)
        expected[f"c{i}"] = [
            (o.frame_index, o.skeleton) for o in estimator.run(feed)
        ]

    server = InferenceServer(
        builder, regressor,
        ServingConfig(max_batch_size=num_sessions, enable_cache=False),
    )
    for i in range(num_sessions):
        server.open_session(f"c{i}")
    results = []
    for t in range(num_frames):
        for i in range(num_sessions):
            server.submit(f"c{i}", feeds[i][t])
        results.extend(server.step())
    results.extend(server.drain())

    got = {f"c{i}": [] for i in range(num_sessions)}
    for result in results:
        got[result.session_id].append(
            (result.frame_index, result.joints)
        )
    for sid, pairs in expected.items():
        got[sid].sort(key=lambda p: p[0])
        assert [p[0] for p in got[sid]] == [p[0] for p in pairs]
        for (_, joints_got), (_, joints_exp) in zip(got[sid], pairs):
            np.testing.assert_allclose(
                joints_got, joints_exp, atol=1e-6
            )
    # The server actually batched: fewer forward batches than poses.
    stats = server.stats()
    assert stats["counters"]["batches"] < stats["counters"]["poses"]
    assert stats["histograms"]["batch_size"]["max"] == num_sessions


def test_batcher_rejects_oversized_batch(stack):
    _, regressor = stack
    batcher = MicroBatcher(regressor, max_batch_size=2)
    requests = [_request(f"s{i}", seed=i) for i in range(3)]
    with pytest.raises(ServingError):
        batcher.run(requests)
    assert batcher.run([]) == []


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
def test_queue_reject_policy():
    queue = RequestQueue(capacity=2, policy="reject")
    queue.put(_request("a", 0))
    queue.put(_request("a", 1))
    with pytest.raises(QueueFullError):
        queue.put(_request("a", 2))
    assert queue.rejected == 1
    assert len(queue) == 2


def test_queue_drop_oldest_prefers_same_session():
    queue = RequestQueue(capacity=3, policy="drop-oldest")
    queue.put(_request("a", 0))
    queue.put(_request("b", 0))
    queue.put(_request("a", 1))
    evicted = queue.put(_request("a", 2))
    # The stale window of the *submitting* session goes first; the
    # other session keeps its place.
    assert evicted.session_id == "a" and evicted.frame_index == 0
    assert queue.dropped == 1
    depths = queue.depth_by_session()
    assert depths == {"a": 2, "b": 1}


def test_queue_block_times_out_without_consumer():
    queue = RequestQueue(
        capacity=1, policy="block", block_timeout_s=0.05
    )
    queue.put(_request("a", 0))
    start = time.perf_counter()
    with pytest.raises(QueueFullError):
        queue.put(_request("a", 1))
    assert time.perf_counter() - start >= 0.04


def test_queue_block_waits_for_consumer():
    queue = RequestQueue(
        capacity=1, policy="block", block_timeout_s=2.0
    )
    queue.put(_request("a", 0))

    def consume():
        time.sleep(0.05)
        queue.pop_batch(1)

    thread = threading.Thread(target=consume)
    thread.start()
    queue.put(_request("a", 1))  # unblocked by the consumer thread
    thread.join()
    assert len(queue) == 1


def test_queue_fairness_round_robin():
    queue = RequestQueue(capacity=16, policy="reject")
    for i in range(6):
        queue.put(_request("hog", i))
    queue.put(_request("quiet", 0))
    batch = queue.pop_batch(4)
    sessions = [r.session_id for r in batch]
    # The quiet session is served within the first batch despite the
    # hog's six-deep backlog.
    assert "quiet" in sessions
    assert sessions.count("hog") == 3


def test_queue_validates():
    with pytest.raises(ServingError):
        RequestQueue(capacity=0)
    with pytest.raises(ServingError):
        RequestQueue(policy="spill")
    with pytest.raises(ServingError):
        RequestQueue(block_timeout_s=0.0)
    with pytest.raises(ServingError):
        RequestQueue().pop_batch(0)


def test_server_drop_oldest_backpressure(stack):
    builder, regressor = stack
    server = InferenceServer(
        builder, regressor,
        ServingConfig(
            max_batch_size=2, queue_capacity=2, policy="drop-oldest",
            enable_cache=False,
        ),
    )
    sid = server.open_session()
    raw = _raw_frames(builder, 6)
    for frame in raw:
        server.submit(sid, frame)  # never stepping: queue overflows
    assert len(server.queue) == 2
    stats = server.stats()
    assert stats["queue"]["dropped"] == 3
    assert stats["sessions"][sid]["dropped"] == 3
    # The retained windows are the newest two.
    results = server.drain()
    assert [r.frame_index for r in results] == [4, 5]


def test_server_block_policy_serves_inline(stack):
    """Single-threaded block policy: a full queue triggers an inline
    step instead of deadlocking the producer."""
    builder, regressor = stack
    server = InferenceServer(
        builder, regressor,
        ServingConfig(
            max_batch_size=2, queue_capacity=2, policy="block",
            block_timeout_s=0.2, enable_cache=False,
        ),
    )
    sid = server.open_session()
    raw = _raw_frames(builder, 6)
    for frame in raw:
        server.submit(sid, frame)
    results = server.drain()
    total = server.stats()["sessions"][sid]["results_out"]
    # Every emitted window was served; nothing dropped or rejected.
    assert total == 5
    assert server.stats()["queue"]["dropped"] == 0
    assert server.stats()["queue"]["rejected"] == 0
    assert len(results) <= total


def test_server_reject_policy_raises(stack):
    builder, regressor = stack
    server = InferenceServer(
        builder, regressor,
        ServingConfig(
            max_batch_size=2, queue_capacity=1, policy="reject",
            enable_cache=False,
        ),
    )
    sid = server.open_session()
    raw = _raw_frames(builder, 3)
    server.submit(sid, raw[0])
    server.submit(sid, raw[1])  # fills the queue
    with pytest.raises(QueueFullError):
        server.submit(sid, raw[2])
    assert server.stats()["counters"]["rejected"] == 1


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def test_segment_cache_lru_and_accounting():
    cache = SegmentCache(capacity=2)
    a, b, c = (np.full((2, 2), v) for v in (1.0, 2.0, 3.0))
    ka, kb, kc = segment_key(a), segment_key(b), segment_key(c)
    assert ka != kb != kc
    assert cache.get(ka) is None  # miss
    cache.put(ka, np.zeros((21, 3)))
    cache.put(kb, np.ones((21, 3)))
    assert cache.get(ka) is not None  # hit; refreshes recency
    cache.put(kc, np.ones((21, 3)))  # evicts b (least recent)
    assert cache.get(kb) is None
    assert cache.get(kc) is not None
    stats = cache.stats()
    assert stats["hits"] == 2
    assert stats["misses"] == 2
    assert stats["evictions"] == 1
    assert stats["size"] == 2
    assert stats["hit_rate"] == pytest.approx(0.5)


def test_segment_key_covers_shape_and_dtype():
    flat = np.arange(4.0)
    assert segment_key(flat) != segment_key(flat.reshape(2, 2))
    assert segment_key(flat) != segment_key(flat.astype(np.float32))


def test_server_cache_skips_network(stack):
    builder, regressor = stack
    server = InferenceServer(
        builder, regressor,
        ServingConfig(max_batch_size=4, enable_cache=True),
    )
    a = server.open_session("a")
    b = server.open_session("b")
    raw = _raw_frames(builder, 2)
    # Both sessions replay the identical capture.
    for frame in raw:
        server.submit(a, frame)
        server.submit(b, frame)
    results = server.drain()
    by_session = {r.session_id: r for r in results}
    # The duplicate window rode along on the first one's forward row
    # (within-batch dedup counts as a cache hit).
    assert by_session["b"].cached or by_session["a"].cached
    np.testing.assert_allclose(
        by_session["a"].joints, by_session["b"].joints, atol=1e-6
    )
    stats = server.stats()
    assert stats["counters"]["cache_hits"] == 1
    assert stats["counters"]["cache_misses"] == 1
    # A third client replaying the same capture is served entirely from
    # the populated cache -- no forward pass at all.
    c = server.open_session("c")
    batches_before = server.stats()["counters"]["batches"]
    for frame in raw:
        server.submit(c, frame)
    repeat = server.drain()
    assert len(repeat) == 1
    assert all(r.cached for r in repeat)
    np.testing.assert_allclose(
        repeat[0].joints, by_session["a"].joints, atol=1e-6
    )
    stats = server.stats()
    assert stats["cache"]["hit_rate"] == pytest.approx(0.5)
    # The all-cached batch still counts as a batch but runs no forward.
    assert stats["counters"]["batches"] == batches_before + 1


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_histogram_percentiles():
    hist = Histogram("latency")
    for value in range(1, 101):
        hist.observe(float(value))
    assert hist.count == 100
    assert hist.percentile(50) == pytest.approx(50.5)
    assert hist.percentile(95) == pytest.approx(95.05)
    summary = hist.summary()
    assert summary["count"] == 100
    assert summary["mean"] == pytest.approx(50.5)
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["p95"] == pytest.approx(95.05)
    assert summary["p99"] == pytest.approx(99.01)
    assert summary["max"] == 100.0


def test_histogram_sliding_reservoir():
    hist = Histogram("latency", capacity=10)
    for value in range(100):
        hist.observe(float(value))
    # Only the newest 10 samples survive; count keeps the full total.
    assert hist.count == 100
    assert hist.summary()["p50"] == pytest.approx(94.5)


def test_metrics_registry_snapshot_and_events():
    registry = MetricsRegistry(event_capacity=4)
    registry.counter("served").increment(3)
    registry.gauge("depth").set(2)
    registry.gauge("depth").add(-1)
    registry.histogram("lat").observe(1.0)
    for i in range(6):
        registry.events.emit("tick", index=i)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["served"] == 3
    assert snapshot["gauges"]["depth"] == 1
    assert snapshot["histograms"]["lat"]["count"] == 1
    # Event log is bounded; sequence numbers keep increasing.
    tail = registry.events.tail(2)
    assert len(registry.events) == 4
    assert [e["index"] for e in tail] == [4, 5]
    assert tail[-1]["seq"] == 5
    with pytest.raises(ServingError):
        registry.counter("served").increment(-1)


# ----------------------------------------------------------------------
# StreamingEstimator adapter
# ----------------------------------------------------------------------
def test_streaming_estimator_raises_typed_errors(stack):
    builder, regressor = stack
    estimator = StreamingEstimator(builder, regressor)
    with pytest.raises(FrameShapeError):
        estimator.push(np.zeros((8, 32)))
    with pytest.raises(FrameShapeError):
        estimator.run(np.zeros((2, 8, 32)))
    # FrameShapeError stays inside the ReproError hierarchy.
    assert issubclass(FrameShapeError, ReproError)
    assert issubclass(QueueFullError, ServingError)


# ----------------------------------------------------------------------
# Per-stage preprocess timing
# ----------------------------------------------------------------------
def test_preprocess_timings_in_server_stats(stack):
    builder, regressor = stack
    server = InferenceServer(
        builder, regressor, ServingConfig(max_batch_size=2)
    )
    session_id = server.open_session()
    for frame in _raw_frames(builder, 3, seed=21):
        server.submit(session_id, frame)
    server.drain()
    histograms = server.stats()["histograms"]
    assert histograms["preprocess_s"]["count"] == 3
    assert histograms["preprocess_s"]["mean"] > 0.0
    for stage in ("bandpass", "range_fft", "doppler_fft", "angle"):
        assert histograms[f"preprocess_{stage}_s"]["count"] == 3


def test_session_without_metrics_has_no_histograms(stack):
    builder, _ = stack
    session = Session(builder)
    frame = _raw_frames(builder, 1, seed=22)[0]
    assert session.feed(frame) is None  # window not yet full
    assert session.frames_in == 1


def test_server_forces_eval_mode_for_deterministic_serving(stack):
    """Regression: a regressor handed over straight from a trainer (still
    in training mode) must serve inference-mode outputs -- dropout as
    identity, batch norm on (unchanging) running statistics."""
    from repro.config import DspConfig, ModelConfig
    from repro.nn.layers import Dropout, Linear, ReLU, Sequential

    builder, _ = stack
    dsp = DspConfig(
        range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
        segment_frames=2,
    )
    model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
        lstm_hidden=16,
    )
    regressor = HandJointRegressor(dsp, model, seed=11)
    # A dropout head makes training-mode forwards stochastic, so any
    # mode leak would show up as non-deterministic serving output.
    regressor.head = Sequential(
        Linear(16, 16), ReLU(), Dropout(0.5),
        Linear(16, model.num_joints * 3),
    )
    regressor.train()
    stats_before = {
        name: buf.copy() for name, buf in regressor.named_buffers()
    }
    server = InferenceServer(
        builder, regressor, ServingConfig(enable_cache=False)
    )
    assert regressor.training is False

    first = server.batcher.run([_request("s", 0, seed=3)])[0].joints
    second = server.batcher.run([_request("s", 1, seed=3)])[0].joints
    assert np.array_equal(first, second)
    for name, buf in regressor.named_buffers():
        assert np.array_equal(buf, stats_before[name]), name


def test_batcher_sharded_predict_matches_unsharded(stack):
    builder, regressor = stack
    requests = [_request("s", i, seed=i) for i in range(6)]
    plain = MicroBatcher(regressor, max_batch_size=8).run(requests)
    sharded = MicroBatcher(
        regressor, max_batch_size=8, shards=3
    ).run(requests)
    for a, b in zip(plain, sharded):
        assert np.allclose(a.joints, b.joints, atol=1e-5)
    with pytest.raises(ServingError):
        MicroBatcher(regressor, shards=-1)


def test_serving_config_validates_shard_threads():
    with pytest.raises(ServingError):
        ServingConfig(shard_threads=-1)


def test_queue_drop_oldest_emits_counter_and_event():
    registry = MetricsRegistry()
    queue = RequestQueue(
        capacity=1, policy="drop-oldest", metrics=registry
    )
    queue.put(_request("a", 0))
    evicted = queue.put(_request("a", 1))
    assert evicted.frame_index == 0
    assert queue.dropped == 1
    assert registry.counter("serving.queue.dropped").value == 1
    events = [
        event for event in registry.events.tail()
        if event["kind"] == "dropped_request"
    ]
    assert len(events) == 1
    assert events[0]["session_id"] == "a"
    assert events[0]["frame_index"] == 0


def test_queue_reject_emits_counter_and_event():
    registry = MetricsRegistry()
    queue = RequestQueue(capacity=1, policy="reject", metrics=registry)
    queue.put(_request("a", 0))
    with pytest.raises(QueueFullError):
        queue.put(_request("a", 1))
    assert registry.counter("serving.queue.rejected").value == 1
    assert any(
        event["kind"] == "rejected_request"
        for event in registry.events.tail()
    )


def test_session_feed_rejects_nonfinite_with_context(stack):
    builder, _ = stack
    session = Session(builder, session_id="client-9")
    frame = np.zeros(
        (
            builder.array.num_virtual,
            builder.radar.chirp_loops,
            builder.radar.samples_per_chirp,
        )
    )
    frame[0, 0, 0] = np.nan
    with pytest.raises(FrameShapeError) as excinfo:
        session.feed(frame)
    message = str(excinfo.value)
    assert "client-9" in message
    assert "frame 0" in message
    assert "non-finite" in message
    with pytest.raises(FrameShapeError):
        session.feed_cube(np.full((4, 8, 8), np.inf))
    with pytest.raises(FrameShapeError):
        session.feed_cube(np.array([["a"] * 8] * 4).reshape(4, 8, -1))


def test_server_quarantines_malformed_frames(stack):
    builder, regressor = stack
    server = InferenceServer(builder, regressor)
    session_id = server.open_session()
    frames = _raw_frames(builder, 3, seed=5)
    poisoned = frames[1].copy()
    poisoned[0, 0, 0] = np.inf

    assert server.submit(session_id, frames[0]) is False  # filling
    assert server.submit(session_id, poisoned) is False   # quarantined
    assert server.submit(session_id, frames[2]) is True   # window full

    stats = server.session_stats(session_id)
    assert stats["quarantined"] == 1
    assert stats["frames_in"] == 2  # the poisoned frame never landed
    assert len(server.dead_letters) == 1
    letter = server.dead_letters.tail(1)[0]
    assert letter["stage"] == "ingest"
    assert letter["session_id"] == session_id
    snapshot = server.stats()
    assert snapshot["counters"]["frames_quarantined"] == 1
    assert snapshot["dead_letters"]["total"] == 1

    results = server.step()
    assert len(results) == 1 and results[0].session_id == session_id


def test_server_strict_frames_raises(stack):
    builder, regressor = stack
    server = InferenceServer(
        builder, regressor, ServingConfig(strict_frames=True)
    )
    session_id = server.open_session()
    poisoned = _raw_frames(builder, 1, seed=5)[0].copy()
    poisoned[0, 0, 0] = np.nan
    with pytest.raises(FrameShapeError):
        server.submit(session_id, poisoned)
    # Even in strict mode the failure is accounted before raising.
    assert server.session_stats(session_id)["quarantined"] == 1
    assert len(server.dead_letters) == 1
