"""Tests of :mod:`repro.resilience`: retry, breaker, fault injection,
error budgets, dead letters and crash-safe checkpoint/resume."""

import json
import os
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    CheckpointError,
    CircuitOpenError,
    InjectedFaultError,
    ResilienceError,
    RetryExhaustedError,
)
from repro.resilience import (
    CircuitBreaker,
    DeadLetterLog,
    ErrorBudget,
    FaultConfig,
    FaultInjector,
    HealthState,
    RetryPolicy,
    atomic_write_bytes,
    checkpoint_path,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)


class FakeClock:
    """Deterministic monotonic clock; ``sleep`` advances it."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now
        self.sleeps = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds

    def advance(self, seconds: float) -> None:
        self.now += seconds


class Flaky:
    """Callable that fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures: int, value="ok", error=ValueError):
        self.failures = failures
        self.value = value
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"injected failure #{self.calls}")
        return self.value


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        clock = FakeClock()
        fn = Flaky(failures=2)
        seen = []
        result = RetryPolicy(max_attempts=3).call(
            fn, retry_on=(ValueError,), sleep=clock.sleep, clock=clock,
            on_retry=lambda attempt, error: seen.append(attempt),
        )
        assert result == "ok"
        assert fn.calls == 3
        assert seen == [0, 1]
        assert len(clock.sleeps) == 2

    def test_exhaustion_chains_last_error(self):
        clock = FakeClock()
        with pytest.raises(RetryExhaustedError) as excinfo:
            RetryPolicy(max_attempts=2).call(
                Flaky(failures=10), retry_on=(ValueError,),
                sleep=clock.sleep, clock=clock,
            )
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "#2" in str(excinfo.value.__cause__)

    def test_unlisted_exceptions_propagate_immediately(self):
        fn = Flaky(failures=5, error=KeyError)
        with pytest.raises(KeyError):
            RetryPolicy(max_attempts=5).call(fn, retry_on=(ValueError,))
        assert fn.calls == 1

    def test_backoff_schedule_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.1, max_delay_s=0.5,
            multiplier=2.0, jitter=0.0,
        )
        assert list(policy.delays()) == pytest.approx(
            [0.1, 0.2, 0.4, 0.5, 0.5]
        )

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.1, max_delay_s=1.0,
            multiplier=2.0, jitter=0.5,
        )
        first = list(policy.delays(np.random.default_rng(3)))
        again = list(policy.delays(np.random.default_rng(3)))
        assert first == again  # same seed, same schedule
        for retry_index, delay in enumerate(first):
            nominal = min(0.1 * 2.0 ** retry_index, 1.0)
            assert 0.5 * nominal <= delay <= 1.5 * nominal

    def test_deadline_truncates_sleep_and_stops(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=1.0, max_delay_s=1.0,
            jitter=0.0, deadline_s=2.5,
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(
                Flaky(failures=100), retry_on=(ValueError,),
                sleep=clock.sleep, clock=clock,
            )
        assert clock.now <= 2.5 + 1e-12
        assert "deadline" in str(excinfo.value)

    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(base_delay_s=0.5, max_delay_s=0.1)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ResilienceError):
            RetryPolicy(deadline_s=0.0)

    @settings(max_examples=60, deadline=None)
    @given(
        max_attempts=st.integers(min_value=1, max_value=8),
        base_delay_s=st.floats(min_value=0.0, max_value=0.5),
        extra_delay_s=st.floats(min_value=0.0, max_value=1.0),
        multiplier=st.floats(min_value=1.0, max_value=4.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
        deadline_s=st.floats(min_value=1e-3, max_value=2.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_property_never_exceeds_deadline(
        self, max_attempts, base_delay_s, extra_delay_s, multiplier,
        jitter, deadline_s, seed,
    ):
        """Whatever the policy, the total time spent inside ``call`` on
        an always-failing function never crosses the deadline."""
        policy = RetryPolicy(
            max_attempts=max_attempts,
            base_delay_s=base_delay_s,
            max_delay_s=base_delay_s + extra_delay_s,
            multiplier=multiplier,
            jitter=jitter,
            deadline_s=deadline_s,
        )
        clock = FakeClock()
        with pytest.raises(RetryExhaustedError):
            policy.call(
                Flaky(failures=10**9), retry_on=(ValueError,),
                rng=np.random.default_rng(seed),
                sleep=clock.sleep, clock=clock,
            )
        assert clock.now <= deadline_s + 1e-9
        assert len(clock.sleeps) <= max_attempts - 1


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("reset_timeout_s", 10.0)
        return CircuitBreaker(clock=clock, **kwargs), clock

    def test_trips_open_after_threshold(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.stats()["opened_total"] == 1

    def test_success_resets_failure_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        breaker, clock = self.make(failure_threshold=1)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(10.0)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make(failure_threshold=1)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        # ...and the timeout restarted from the probe failure.
        clock.advance(10.0)
        assert breaker.state == "half-open"

    def test_half_open_admits_exactly_one_probe_under_concurrency(self):
        breaker, clock = self.make(failure_threshold=1)
        breaker.record_failure()
        clock.advance(10.0)
        workers = 16
        barrier = threading.Barrier(workers)
        admitted = []

        def contend():
            barrier.wait()
            if breaker.allow():
                admitted.append(threading.get_ident())

        threads = [
            threading.Thread(target=contend) for _ in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 1
        # The losers were refused, not queued.
        assert breaker.stats()["refused_total"] >= workers - 1
        assert breaker.stats()["probes_total"] == 1

    def test_call_wraps_allow_and_outcome(self):
        breaker, clock = self.make(failure_threshold=1)
        with pytest.raises(ValueError):
            breaker.call(Flaky(failures=1))
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")
        clock.advance(10.0)
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == "closed"

    def test_publishes_state_gauge_and_open_counter(self):
        from repro.serving.metrics import MetricsRegistry

        registry = MetricsRegistry()
        breaker = CircuitBreaker(
            failure_threshold=1, name="test.breaker",
            metrics=registry, clock=FakeClock(),
        )
        breaker.record_failure()
        assert registry.gauge("test.breaker.state").value == 2
        assert registry.counter("test.breaker.opened").value == 1
        assert any(
            event["kind"] == "breaker_open"
            for event in registry.events.tail()
        )


# ---------------------------------------------------------------------------
# FaultInjector
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_config_validation(self):
        with pytest.raises(ResilienceError):
            FaultConfig(frame_corrupt_rate=1.5)
        with pytest.raises(ResilienceError):
            FaultConfig(frame_modes=("meteor-strike",))
        with pytest.raises(ResilienceError):
            FaultInjector(FaultConfig(), frame_corrupt_rate=0.5)

    def test_deterministic_replay(self, fault_injector):
        frames = np.random.default_rng(0).normal(size=(40, 4, 8, 16))
        first = fault_injector(frame_corrupt_rate=0.3, seed=9)
        second = fault_injector(frame_corrupt_rate=0.3, seed=9)
        kinds_a = [first.corrupt_frame(f)[1] for f in frames]
        kinds_b = [second.corrupt_frame(f)[1] for f in frames]
        assert kinds_a == kinds_b
        assert any(kind is not None for kind in kinds_a)
        first.reset()
        assert [first.corrupt_frame(f)[1] for f in frames] == kinds_a

    def test_corruption_modes(self, fault_injector):
        frame = np.ones((4, 8, 16))
        for mode in ("nan", "inf"):
            injector = fault_injector(
                frame_corrupt_rate=1.0, frame_modes=(mode,)
            )
            corrupted, kind = injector.corrupt_frame(frame)
            assert kind == mode
            assert corrupted.shape == frame.shape
            assert not np.all(np.isfinite(corrupted))
            assert np.all(np.isfinite(frame))  # input untouched
        corrupted, kind = fault_injector(
            frame_corrupt_rate=1.0, frame_modes=("wrong-shape",)
        ).corrupt_frame(frame)
        assert kind == "wrong-shape" and corrupted.ndim == 1
        dropped, kind = fault_injector(
            frame_corrupt_rate=1.0, frame_modes=("drop",)
        ).corrupt_frame(frame)
        assert dropped is None and kind == "drop"

    def test_complex_frames_keep_their_dtype(self, fault_injector):
        frame = (
            np.ones((2, 4, 8)) + 1j * np.ones((2, 4, 8))
        )
        corrupted, kind = fault_injector(
            frame_corrupt_rate=1.0, frame_modes=("nan",)
        ).corrupt_frame(frame)
        assert kind == "nan"
        assert np.iscomplexobj(corrupted)
        assert not np.all(np.isfinite(corrupted))

    def test_forward_and_batch_faults_count(self, fault_injector):
        injector = fault_injector(
            forward_fail_rate=1.0, batch_kill_rate=1.0,
            forward_delay_rate=1.0, forward_delay_s=0.25,
        )
        slept = []
        assert injector.maybe_delay_forward(sleep=slept.append) == 0.25
        with pytest.raises(InjectedFaultError):
            injector.maybe_fail_forward()
        with pytest.raises(InjectedFaultError):
            injector.maybe_kill_batch()
        assert slept == [0.25]
        stats = injector.stats()
        assert stats["forward.delay"] == 1
        assert stats["forward.fail"] == 1
        assert stats["batch.kill"] == 1

    def test_compile_fail_is_deterministic(self, fault_injector):
        from repro.errors import InferenceCompileError

        injector = fault_injector(compile_fail=True)
        for _ in range(3):
            with pytest.raises(InferenceCompileError):
                injector.maybe_fail_compile()
        fault_injector().maybe_fail_compile()  # off by default


# ---------------------------------------------------------------------------
# ErrorBudget / HealthState
# ---------------------------------------------------------------------------
class TestErrorBudget:
    def test_health_ladder(self):
        budget = ErrorBudget(
            window=10, degraded_ratio=0.2, unhealthy_ratio=0.5,
            min_events=2,
        )
        assert budget.health() is HealthState.HEALTHY
        for _ in range(8):
            budget.record_success()
        budget.record_failure()
        assert budget.health() is HealthState.HEALTHY  # 1/9 < 0.2
        budget.record_failure()
        assert budget.health() is HealthState.DEGRADED  # 2/10
        for _ in range(4):
            budget.record_failure()
        assert budget.health() is HealthState.UNHEALTHY

    def test_window_forgets_old_failures(self):
        budget = ErrorBudget(
            window=4, degraded_ratio=0.25, unhealthy_ratio=0.5,
            min_events=1,
        )
        for _ in range(4):
            budget.record_failure()
        assert budget.health() is HealthState.UNHEALTHY
        for _ in range(4):
            budget.record_success()
        assert budget.health() is HealthState.HEALTHY
        assert budget.failures_total == 4  # lifetime totals survive

    def test_min_events_suppresses_early_flapping(self):
        budget = ErrorBudget(min_events=4)
        budget.record_failure()
        assert budget.health() is HealthState.HEALTHY
        assert budget.ratio() == 1.0

    def test_worst_ordering(self):
        assert HealthState.worst() is HealthState.HEALTHY
        assert HealthState.worst(
            HealthState.HEALTHY, HealthState.DEGRADED
        ) is HealthState.DEGRADED
        assert HealthState.worst(
            HealthState.DEGRADED, HealthState.UNHEALTHY,
            HealthState.HEALTHY,
        ) is HealthState.UNHEALTHY
        assert HealthState.UNHEALTHY.code == 2


# ---------------------------------------------------------------------------
# DeadLetterLog
# ---------------------------------------------------------------------------
class TestDeadLetterLog:
    def test_ring_buffer_and_totals(self):
        log = DeadLetterLog(capacity=3)
        for index in range(5):
            log.record(
                session_id="s", frame_index=index, stage="ingest",
                reason=f"bad frame {index}",
            )
        assert len(log) == 3
        assert log.total == 5
        assert [r["frame_index"] for r in log.tail()] == [2, 3, 4]
        assert [r["frame_index"] for r in log.tail(2)] == [3, 4]
        stats = log.stats()
        assert stats == {"count": 3, "total": 5, "capacity": 3}

    def test_jsonl_export(self, tmp_path):
        log = DeadLetterLog()
        log.record(
            session_id="s-1", frame_index=7, stage="forward",
            reason="retries exhausted", corr_id="s-1#7",
        )
        path = tmp_path / "dead_letters.jsonl"
        log.to_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["session_id"] == "s-1"
        assert record["corr_id"] == "s-1#7"
        assert record["stage"] == "forward"

    def test_payload_truncated_to_cap(self):
        log = DeadLetterLog(payload_cap=4)
        letter = log.record(
            session_id="conn1@peer", frame_index=0,
            stage="netfront-protocol", reason="bad magic",
            payload=b"\xde\xad\xbe\xef-and-a-lot-more-garbage",
        )
        # Only the first ``payload_cap`` bytes are retained...
        assert letter.payload_hex == "deadbeef"
        # ...but the original size is preserved for forensics.
        assert letter.payload_len == 27

    def test_payload_cap_zero_keeps_length_only(self):
        log = DeadLetterLog(payload_cap=0)
        letter = log.record(
            session_id="s", frame_index=0, stage="x", reason="y",
            payload=b"abcdef",
        )
        assert letter.payload_hex == ""
        assert letter.payload_len == 6

    def test_export_jsonl_snapshots_under_concurrent_writes(
        self, tmp_path
    ):
        """export_jsonl must snapshot the ring under the lock: a writer
        hammering the log concurrently must never corrupt the export
        (the classic failure is ``deque mutated during iteration``)."""
        import threading

        log = DeadLetterLog(capacity=64, payload_cap=8)
        stop = threading.Event()

        def writer():
            index = 0
            while not stop.is_set():
                log.record(
                    session_id="w", frame_index=index, stage="chaos",
                    reason="spin", payload=b"0123456789abcdef",
                )
                index += 1

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            for round_index in range(20):
                path = tmp_path / f"letters-{round_index}.jsonl"
                log.export_jsonl(path)
                for line in path.read_text().splitlines():
                    record = json.loads(line)  # every line is valid
                    assert record["payload_len"] == 16
                    assert len(record["payload_hex"]) == 16  # 8 bytes
        finally:
            stop.set()
            thread.join(timeout=10.0)


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------
class TestCheckpoint:
    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "sub" / "blob.bin"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        assert [p.name for p in path.parent.iterdir()] == ["blob.bin"]

    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        model = {
            "conv.weight": rng.normal(size=(3, 3)),
            "buffer:bn.running_mean": rng.normal(size=4),
        }
        optimizer = {
            "type": "Adam",
            "lr": 1e-3,
            "t": 17,
            "m": [rng.normal(size=(3, 3)), rng.normal(size=4)],
            "v": [rng.normal(size=(3, 3)), rng.normal(size=4)],
        }
        extra = {"epoch": 2, "rng_state": {"state": [1, 2, 3]}}
        path = checkpoint_path(tmp_path, 2)
        save_checkpoint(path, model, optimizer, extra)
        payload = load_checkpoint(path)
        for key, value in model.items():
            assert np.array_equal(payload["model"][key], value)
        restored = payload["optimizer"]
        assert restored["type"] == "Adam"
        assert restored["t"] == 17
        for slot in ("m", "v"):
            assert len(restored[slot]) == 2
            for got, want in zip(restored[slot], optimizer[slot]):
                assert np.array_equal(got, want)
        assert payload["extra"] == extra

    def test_latest_ignores_tmp_and_orders_by_epoch(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        for epoch in (1, 3, 2):
            save_checkpoint(checkpoint_path(tmp_path, epoch), {})
        # A stale tmp file from a crashed write must never win.
        (tmp_path / "ckpt-epoch0009.npz.abc.tmp").write_bytes(b"junk")
        assert latest_checkpoint(tmp_path) == checkpoint_path(tmp_path, 3)

    def test_load_rejects_garbage(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "missing.npz")
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"this is not an archive")
        with pytest.raises(CheckpointError):
            load_checkpoint(junk)
        stray = tmp_path / "stray.npz"
        np.savez(stray, some_array=np.zeros(3))
        with pytest.raises(CheckpointError):
            load_checkpoint(stray)

    def test_meta_must_be_json_serialisable(self, tmp_path):
        with pytest.raises(CheckpointError):
            save_checkpoint(
                tmp_path / "bad.npz", {}, extra={"fn": lambda: None}
            )


# ---------------------------------------------------------------------------
# Optimizer state round-trip
# ---------------------------------------------------------------------------
class TestOptimizerState:
    def _params(self, seed):
        from repro.nn.tensor import Tensor

        rng = np.random.default_rng(seed)
        return [
            Tensor(rng.normal(size=(4, 3)), requires_grad=True),
            Tensor(rng.normal(size=3), requires_grad=True),
        ]

    def _step(self, optimizer, params, rng):
        for param in params:
            param.grad = rng.normal(size=param.data.shape)
        optimizer.step()
        optimizer.zero_grad()

    @pytest.mark.parametrize("name", ["Adam", "SGD", "RMSProp"])
    def test_resumed_optimizer_matches_uninterrupted(self, name):
        from repro.nn import optim

        def make(params):
            if name == "Adam":
                return optim.Adam(params, lr=1e-2)
            if name == "SGD":
                return optim.SGD(params, lr=1e-2, momentum=0.9)
            return optim.RMSProp(params, lr=1e-2, momentum=0.9)

        # Uninterrupted: 6 steps straight.
        params_a = self._params(seed=1)
        opt_a = make(params_a)
        rng = np.random.default_rng(5)
        for _ in range(6):
            self._step(opt_a, params_a, rng)

        # Interrupted: 3 steps, state round-trip, 3 more steps.
        params_b = self._params(seed=1)
        opt_b = make(params_b)
        rng = np.random.default_rng(5)
        for _ in range(3):
            self._step(opt_b, params_b, rng)
        state = opt_b.state_dict()
        opt_c = make(params_b)
        opt_c.load_state_dict(state)
        for _ in range(3):
            self._step(opt_c, params_b, rng)

        for tensor_a, tensor_b in zip(params_a, params_b):
            assert np.array_equal(tensor_a.data, tensor_b.data)

    def test_load_rejects_wrong_type(self):
        from repro.nn import optim

        params = self._params(seed=0)
        state = optim.SGD(params, lr=0.1).state_dict()
        with pytest.raises(Exception):
            optim.Adam(params, lr=0.1).load_state_dict(state)
