"""Tests of the application layer: gesture classification and UI control."""

import numpy as np
import pytest

from repro.apps.gesture_classifier import (
    GestureClassifier,
    skeleton_descriptor,
)
from repro.apps.ui_control import (
    DEFAULT_COMMANDS,
    GestureCommandMapper,
    UiEvent,
)
from repro.errors import ReproError
from repro.hand.gestures import gesture_pose, list_gestures
from repro.hand.kinematics import (
    forward_kinematics,
    orientation_from_yaw_pitch,
)
from repro.hand.shape import HandShape


def joints_for(gesture, scale=1.0, **placement):
    pose = gesture_pose(gesture, **placement)
    return forward_kinematics(HandShape.from_scale(scale), pose)


# ----------------------------------------------------------------------
# Descriptor
# ----------------------------------------------------------------------
def test_descriptor_shape_and_range():
    descriptor = skeleton_descriptor(joints_for("open_palm"))
    assert descriptor.shape == (15,)
    curls = descriptor[0::3]
    assert np.all(curls > 0.9)  # open palm: every finger straight


def test_descriptor_distinguishes_fist_from_open():
    open_desc = skeleton_descriptor(joints_for("open_palm"))
    fist_desc = skeleton_descriptor(joints_for("fist"))
    # Non-thumb curls collapse in a fist.
    assert np.all(fist_desc[3::3] < 0.75)
    assert np.linalg.norm(open_desc - fist_desc) > 0.5


def test_descriptor_invariant_to_placement():
    base = skeleton_descriptor(joints_for("point"))
    moved = skeleton_descriptor(
        joints_for(
            "point",
            wrist_position=np.array([0.7, 0.2, -0.1]),
            orientation=orientation_from_yaw_pitch(0.4, -0.2),
        )
    )
    assert np.allclose(base, moved, atol=1e-9)


def test_descriptor_insensitive_to_scale():
    small = skeleton_descriptor(joints_for("grab", scale=0.9))
    large = skeleton_descriptor(joints_for("grab", scale=1.1))
    assert np.allclose(small, large, atol=1e-6)


def test_descriptor_validates():
    with pytest.raises(ReproError):
        skeleton_descriptor(np.zeros((20, 3)))


# ----------------------------------------------------------------------
# Classifier
# ----------------------------------------------------------------------
#: Gestures that share identical finger angles in the library; the
#: classifier cannot (and need not) distinguish them.
ALIASES = {
    "fist": {"fist", "count_zero"},
    "count_zero": {"fist", "count_zero"},
    "point": {"point", "count_one"},
    "count_one": {"point", "count_one"},
    "victory": {"victory", "count_two"},
    "count_two": {"victory", "count_two"},
}


def test_classifier_perfect_on_clean_templates():
    classifier = GestureClassifier()
    for name in list_gestures():
        label, confidence = classifier.classify(joints_for(name))
        assert label in ALIASES.get(name, {name}), name
        assert 0.0 <= confidence <= 1.0


def test_classifier_robust_to_noise():
    classifier = GestureClassifier(
        gestures=["fist", "open_palm", "point"]
    )
    rng = np.random.default_rng(0)
    correct = 0
    trials = 30
    for i in range(trials):
        name = ["fist", "open_palm", "point"][i % 3]
        noisy = joints_for(name) + rng.normal(0, 0.004, size=(21, 3))
        label, _ = classifier.classify(noisy)
        correct += label == name
    assert correct >= trials * 0.9


def test_classifier_handles_unseen_hand_scale():
    classifier = GestureClassifier(gestures=["fist", "open_palm"])
    label, _ = classifier.classify(joints_for("fist", scale=1.12))
    assert label == "fist"


def test_classifier_sequence():
    classifier = GestureClassifier(gestures=["fist", "open_palm"])
    sequence = np.stack(
        [joints_for("fist"), joints_for("open_palm")]
    )
    labels = [name for name, _ in classifier.classify_sequence(sequence)]
    assert labels == ["fist", "open_palm"]


def test_classifier_validates_gestures():
    with pytest.raises(ReproError):
        GestureClassifier(gestures=["vulcan_salute"])
    with pytest.raises(ReproError):
        GestureClassifier(hand_scales=())


# ----------------------------------------------------------------------
# UI control
# ----------------------------------------------------------------------
def test_mapper_emits_on_stable_gesture():
    mapper = GestureCommandMapper(hold_frames=2)
    stream = np.stack([joints_for("point")] * 3)
    events = mapper.process_sequence(stream)
    assert len(events) == 1
    event = events[0]
    assert isinstance(event, UiEvent)
    assert event.gesture == "point"
    assert event.command == DEFAULT_COMMANDS["point"]
    assert event.frame_index == 1  # second consecutive frame


def test_mapper_debounces_single_frames():
    mapper = GestureCommandMapper(hold_frames=3)
    stream = np.stack(
        [joints_for("point"), joints_for("fist"), joints_for("point")]
    )
    assert mapper.process_sequence(stream) == []


def test_mapper_no_reemission_until_change():
    mapper = GestureCommandMapper(hold_frames=1)
    stream = np.stack([joints_for("fist")] * 4)
    events = mapper.process_sequence(stream)
    assert len(events) == 1
    # After switching gestures, the next stable gesture emits again.
    more = mapper.process_sequence(
        np.stack([joints_for("open_palm")] * 2)
    )
    assert len(more) == 1
    assert more[0].command == DEFAULT_COMMANDS["open_palm"]


def test_mapper_ignores_unmapped_gesture():
    # Classifier knows both gestures but only "point" is mapped to a
    # command: a stable fist is recognised yet emits nothing.
    mapper = GestureCommandMapper(
        classifier=GestureClassifier(gestures=["point", "fist"]),
        hold_frames=1,
        commands={"point": "cursor"},
    )
    events = mapper.process_sequence(np.stack([joints_for("fist")] * 2))
    assert events == []


def test_mapper_reset():
    mapper = GestureCommandMapper(hold_frames=1)
    mapper.process_sequence(np.stack([joints_for("fist")] * 2))
    mapper.reset()
    events = mapper.process_sequence(np.stack([joints_for("fist")] * 2))
    assert len(events) == 1  # re-emits after reset


def test_mapper_validation():
    with pytest.raises(ReproError):
        GestureCommandMapper(hold_frames=0)
    with pytest.raises(ReproError):
        GestureCommandMapper(min_confidence=2.0)
