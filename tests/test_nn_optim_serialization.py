"""Tests of optimizers, LR schedule and weight serialization."""

import numpy as np
import pytest

from repro.errors import ModelError, SerializationError
from repro.nn.layers import Linear, Sequential
from repro.nn.optim import SGD, Adam, CosineSchedule
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import Tensor


def quadratic_param(start=5.0):
    return Tensor(np.array([start]), requires_grad=True)


def minimise(optimizer, param, steps=200):
    for _ in range(steps):
        loss = (param * param).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return float(param.data[0])


def test_sgd_minimises_quadratic():
    p = quadratic_param()
    assert abs(minimise(SGD([p], lr=0.1), p)) < 1e-4


def test_sgd_momentum_minimises_quadratic():
    p = quadratic_param()
    assert abs(minimise(SGD([p], lr=0.05, momentum=0.9), p)) < 1e-3


def test_adam_minimises_quadratic():
    p = quadratic_param()
    assert abs(minimise(Adam([p], lr=0.1), p, steps=400)) < 1e-3


def test_adam_weight_decay_shrinks_weights():
    p = Tensor(np.array([1.0]), requires_grad=True)
    opt = Adam([p], lr=0.01, weight_decay=0.5)
    for _ in range(50):
        loss = (p * 0.0).sum()  # zero task gradient
        opt.zero_grad()
        loss.backward()
        opt.step()
    assert abs(p.data[0]) < 1.0


def test_optimizer_validation():
    with pytest.raises(ModelError):
        SGD([], lr=0.1)
    with pytest.raises(ModelError):
        SGD([quadratic_param()], lr=-1.0)
    with pytest.raises(ModelError):
        SGD([quadratic_param()], lr=0.1, momentum=1.5)
    with pytest.raises(ModelError):
        Adam([quadratic_param()], betas=(1.5, 0.9))


def test_gradient_clipping():
    p = Tensor(np.array([1.0, 1.0]), requires_grad=True)
    opt = SGD([p], lr=0.1)
    (p * 100.0).sum().backward()
    norm = opt.clip_gradients(1.0)
    assert norm == pytest.approx(np.sqrt(2) * 100.0)
    assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)
    with pytest.raises(ModelError):
        opt.clip_gradients(0.0)


def test_skip_params_without_grad():
    a = quadratic_param()
    b = quadratic_param()
    opt = Adam([a, b], lr=0.1)
    (a * a).sum().backward()
    before = b.data.copy()
    opt.step()
    assert np.array_equal(b.data, before)


def test_cosine_schedule_endpoints():
    p = quadratic_param()
    opt = SGD([p], lr=1.0)
    schedule = CosineSchedule(opt, lr0=1.0, total_steps=100, lr_min=0.1)
    assert schedule.current_lr() == pytest.approx(1.0)
    for _ in range(100):
        schedule.step()
    assert schedule.current_lr() == pytest.approx(0.1)
    assert opt.lr == pytest.approx(0.1)


def test_cosine_schedule_halfway():
    opt = SGD([quadratic_param()], lr=1.0)
    schedule = CosineSchedule(opt, lr0=1.0, total_steps=100)
    for _ in range(50):
        schedule.step()
    assert schedule.current_lr() == pytest.approx(0.5, abs=0.02)


def test_cosine_schedule_validation():
    opt = SGD([quadratic_param()], lr=1.0)
    with pytest.raises(ModelError):
        CosineSchedule(opt, lr0=1.0, total_steps=0)
    with pytest.raises(ModelError):
        CosineSchedule(opt, lr0=1.0, total_steps=10, lr_min=2.0)


def test_save_load_round_trip(tmp_path):
    net = Sequential(Linear(3, 4), Linear(4, 2))
    path = tmp_path / "weights.npz"
    save_state(net, path)
    other = Sequential(Linear(3, 4), Linear(4, 2))
    load_state(other, path)
    x = Tensor(np.random.default_rng(0).normal(size=(2, 3)))
    assert np.allclose(net(x).data, other(x).data)


def test_load_missing_file(tmp_path):
    net = Sequential(Linear(2, 2))
    with pytest.raises(SerializationError):
        load_state(net, tmp_path / "missing.npz")


def test_save_appends_npz_suffix(tmp_path):
    net = Sequential(Linear(2, 2))
    save_state(net, tmp_path / "w.npz")
    load_state(net, tmp_path / "w")  # suffix added automatically
