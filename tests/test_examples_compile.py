"""Smoke checks that every example script parses, compiles and exposes a
main() entry point (full runs are exercised manually / in CI nightly)."""

import ast
import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable minimum


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard_and_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
    has_main = any(
        isinstance(node, ast.FunctionDef) and node.name == "main"
        for node in tree.body
    )
    assert has_main, f"{path.name} lacks a main() function"
    guard = any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
    )
    assert guard, f"{path.name} lacks an __main__ guard"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_only_public_api(path):
    """Examples should demonstrate the public API: no private (_-prefixed)
    module imports other than the benchmark cache helper."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            parts = node.module.split(".")
            assert not any(
                p.startswith("_") for p in parts
            ), f"{path.name} imports private module {node.module}"
