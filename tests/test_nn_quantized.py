"""Quantized execution modes of the compiled inference engine.

Covers the calibration pass, the float16 / int8 accuracy budgets, the
uncalibrated-int8 failure mode (and its degradation through the serving
breaker), and folded-weight invalidation: any weight mutation --
optimizer steps from all three optimizers, ``load_state_dict``, a raw
``bump_version`` -- must force a refold that also drops the cached
quantized weight variants before the next compiled execute.
"""

import numpy as np
import pytest

from repro.core.regressor import HandJointRegressor
from repro.errors import (
    InferenceCompileError,
    ModelError,
    QuantizationError,
)
from repro.nn.optim import SGD, Adam, RMSProp
from repro.nn.tensor import Tensor

FLOAT16_BUDGET_MM = 1.0
INT8_BUDGET_MM = 5.0


@pytest.fixture
def regressor(small_dsp, small_model):
    return HandJointRegressor(small_dsp, small_model, seed=3)


def _segments(rng, dsp, batch=4):
    return rng.normal(
        size=(
            batch, dsp.segment_frames, dsp.doppler_bins,
            dsp.range_bins, dsp.angle_bins_total,
        )
    ).astype(np.float32)


def _int8_weight_snapshots(plan):
    """Copies of every op's cached int8 weight variant (op_id keyed)."""
    return {
        op.op_id: np.array(op._modes["int8"], copy=True)
        for op in plan.plan.ops
        if "int8" in getattr(op, "_modes", {})
    }


# -- calibration ------------------------------------------------------
def test_calibrate_records_ranges(regressor, small_dsp, rng):
    x = _segments(rng, small_dsp)
    registers = regressor.calibrate(x)
    assert registers > 0
    plan = regressor.compiled()
    assert plan.act_ranges
    assert plan.stats()["calibrated"] is True


def test_calibrate_rejects_empty_input(regressor, small_dsp):
    with pytest.raises(ModelError):
        regressor.calibrate(
            np.empty(
                (0, small_dsp.segment_frames, small_dsp.doppler_bins,
                 small_dsp.range_bins, small_dsp.angle_bins_total),
                dtype=np.float32,
            )
        )
    with pytest.raises(QuantizationError):
        regressor.compiled().calibrate(iter(()))


# -- accuracy budgets -------------------------------------------------
def test_float16_within_budget_of_float32(regressor, small_dsp, rng):
    x = _segments(rng, small_dsp)
    f32 = regressor.predict(x)
    f16 = regressor.predict(x, precision="float16")
    assert float(np.abs(f16 - f32).max()) * 1e3 <= FLOAT16_BUDGET_MM


def test_int8_within_budget_after_calibration(
    regressor, small_dsp, rng
):
    x = _segments(rng, small_dsp, batch=6)
    regressor.calibrate(x)
    eager = regressor.predict(x, use_compiled=False)
    int8 = regressor.predict(x, precision="int8")
    err_mm = float(
        np.mean(np.linalg.norm(int8 - eager, axis=-1))
    ) * 1e3
    assert err_mm <= INT8_BUDGET_MM


def test_int8_without_calibration_raises(regressor, small_dsp, rng):
    x = _segments(rng, small_dsp, batch=2)
    with pytest.raises(QuantizationError):
        regressor.predict(x, precision="int8")


def test_unknown_precision_rejected(regressor, small_dsp, rng):
    x = _segments(rng, small_dsp, batch=2)
    with pytest.raises(InferenceCompileError):
        regressor.predict(x, precision="bfloat16")


def test_quantization_error_is_compile_error():
    # The serving breaker catches InferenceCompileError; the subclass
    # relationship is what routes uncalibrated int8 to the eager path.
    assert issubclass(QuantizationError, InferenceCompileError)


def test_batcher_degrades_uncalibrated_int8_to_eager(
    regressor, small_dsp, rng
):
    from repro.resilience import CircuitBreaker
    from repro.serving.batcher import MicroBatcher
    from repro.serving.session import SegmentRequest

    batcher = MicroBatcher(
        regressor, max_batch_size=4,
        breaker=CircuitBreaker(failure_threshold=1),
        precision="int8",
    )
    x = _segments(rng, small_dsp, batch=2)
    requests = [
        SegmentRequest(session_id="s", frame_index=i, segment=x[i])
        for i in range(2)
    ]
    results = batcher.run(requests)
    assert len(results) == 2
    eager = regressor.predict(x, use_compiled=False)
    for i, result in enumerate(results):
        assert np.allclose(result.joints, eager[i], atol=1e-5)


# -- folded-weight invalidation (satellite: all three optimizers) -----
def _backward_once(regressor, x):
    loss = (
        regressor.forward(Tensor(regressor.normalize_inputs(x)))
        * Tensor(np.float32(1.0))
    ).sum()
    loss.backward()


@pytest.mark.parametrize("opt_cls", [SGD, Adam, RMSProp])
def test_optimizer_step_invalidates_quantized_weights(
    opt_cls, regressor, small_dsp, rng
):
    x = _segments(rng, small_dsp, batch=3)
    regressor.calibrate(x)
    plan = regressor.compiled()
    regressor.predict(x, precision="int8")  # populate quantized caches
    before = _int8_weight_snapshots(plan)
    assert before  # the engine actually caches int8 variants

    opt = opt_cls(regressor.parameters(), lr=5e-2)
    _backward_once(regressor, x)
    opt.step()

    # The next compiled execute must refold and re-derive the
    # quantized variants from the new weights.
    eager_after = regressor.predict(x, use_compiled=False)
    compiled_after = regressor.predict(x)
    assert float(np.abs(compiled_after - eager_after).max()) <= 1e-5
    regressor.predict(x, precision="int8")
    after = _int8_weight_snapshots(plan)
    assert set(after) == set(before)
    assert any(
        not np.array_equal(after[op_id], before[op_id])
        for op_id in after
    )


def test_bump_version_invalidates_quantized_weights(
    regressor, small_dsp, rng
):
    x = _segments(rng, small_dsp, batch=2)
    regressor.calibrate(x)
    plan = regressor.compiled()
    regressor.predict(x, precision="int8")
    before = _int8_weight_snapshots(plan)

    # Scale every parameter: bump_version alone (no optimizer, no
    # load_state_dict) must still invalidate the folded + quantized
    # weights of every op on the next compiled execute.
    for param in regressor.parameters():
        param.data = param.data * np.float32(1.05)
        param.bump_version()

    eager_after = regressor.predict(x, use_compiled=False)
    compiled_after = regressor.predict(x)
    assert float(np.abs(compiled_after - eager_after).max()) <= 1e-5
    regressor.predict(x, precision="int8")
    after = _int8_weight_snapshots(plan)
    assert any(
        not np.array_equal(after[op_id], before[op_id])
        for op_id in after
    )


def test_load_state_dict_invalidates_quantized_weights(
    small_dsp, small_model, rng
):
    a = HandJointRegressor(small_dsp, small_model, seed=1)
    b = HandJointRegressor(small_dsp, small_model, seed=2)
    x = _segments(rng, small_dsp, batch=3)
    b.calibrate(x)
    plan_b = b.compiled()
    b.predict(x, precision="int8")
    before = _int8_weight_snapshots(plan_b)

    b.load_state_dict(a.state_dict())

    assert np.allclose(b.predict(x), a.predict(x), atol=1e-6)
    b.predict(x, precision="int8")
    after = _int8_weight_snapshots(plan_b)
    assert any(
        not np.array_equal(after[op_id], before[op_id])
        for op_id in after
    )
