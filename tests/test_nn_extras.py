"""Tests of the auxiliary NN components: GroupNorm, softmax/cross
entropy, RMSProp, step schedule, early stopping."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn import functional as F
from repro.nn.layers import GroupNorm
from repro.nn.loss import cross_entropy_loss
from repro.nn.optim import SGD, EarlyStopping, RMSProp, StepSchedule
from repro.nn.tensor import Tensor

from conftest import numeric_gradient


def test_softmax_rows_sum_to_one():
    x = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
    out = F.softmax(x)
    assert np.allclose(out.data.sum(axis=-1), 1.0, atol=1e-6)
    assert np.all(out.data > 0)


def test_softmax_stability_with_large_logits():
    x = Tensor(np.array([[1000.0, 1001.0, 999.0]]))
    out = F.softmax(x)
    assert np.isfinite(out.data).all()
    assert out.data.argmax() == 1


def test_log_softmax_matches_log_of_softmax():
    x = Tensor(np.random.default_rng(1).normal(size=(3, 5)))
    a = F.log_softmax(x).data
    b = np.log(F.softmax(x).data)
    assert np.allclose(a, b, atol=1e-6)


def test_cross_entropy_gradient_numeric():
    rng = np.random.default_rng(2)
    logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    targets = np.array([0, 2, 1, 2])

    def loss():
        logits.grad = None
        return float(cross_entropy_loss(logits, targets).data)

    cross_entropy_loss(logits, targets).backward()
    grad = logits.grad.copy()
    assert np.allclose(
        grad, numeric_gradient(loss, logits.data), atol=1e-5
    )


def test_cross_entropy_perfect_prediction_near_zero():
    logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
    loss = cross_entropy_loss(logits, [0, 1])
    assert float(loss.data) < 1e-4


def test_cross_entropy_validates():
    logits = Tensor(np.zeros((2, 3)))
    with pytest.raises(ModelError):
        cross_entropy_loss(logits, [0])
    with pytest.raises(ModelError):
        cross_entropy_loss(logits, [0, 5])
    with pytest.raises(ModelError):
        cross_entropy_loss(Tensor(np.zeros(3)), [0])


def test_group_norm_normalises_per_group():
    gn = GroupNorm(2, 4)
    x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(2, 4, 5, 5)))
    out = gn(x)
    grouped = out.data.reshape(2, 2, 2, 5, 5)
    assert np.allclose(grouped.mean(axis=(2, 3, 4)), 0.0, atol=1e-5)
    assert np.allclose(grouped.std(axis=(2, 3, 4)), 1.0, atol=1e-2)


def test_group_norm_batch_independent():
    gn = GroupNorm(2, 4)
    rng = np.random.default_rng(1)
    a = rng.normal(size=(1, 4, 3, 3))
    b = rng.normal(size=(1, 4, 3, 3))
    separate = np.concatenate(
        [gn(Tensor(a)).data, gn(Tensor(b)).data]
    )
    together = gn(Tensor(np.concatenate([a, b]))).data
    assert np.allclose(separate, together, atol=1e-6)


def test_group_norm_gradients_flow():
    gn = GroupNorm(2, 4)
    x = Tensor(np.random.default_rng(2).normal(size=(2, 4, 3, 3)),
               requires_grad=True)
    (gn(x) ** 2).sum().backward()
    assert x.grad is not None
    assert gn.gamma.grad is not None


def test_group_norm_validates():
    with pytest.raises(ModelError):
        GroupNorm(3, 4)
    gn = GroupNorm(2, 4)
    with pytest.raises(ModelError):
        gn(Tensor(np.ones((1, 6, 2, 2))))


def test_rmsprop_minimises_quadratic():
    p = Tensor(np.array([4.0]), requires_grad=True)
    opt = RMSProp([p], lr=0.05, momentum=0.5)
    for _ in range(300):
        loss = (p * p).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    assert abs(float(p.data[0])) < 1e-2


def test_rmsprop_validates():
    p = Tensor(np.array([1.0]), requires_grad=True)
    with pytest.raises(ModelError):
        RMSProp([p], decay=1.5)
    with pytest.raises(ModelError):
        RMSProp([p], momentum=1.0)


def test_step_schedule_halves_lr():
    p = Tensor(np.array([1.0]), requires_grad=True)
    opt = SGD([p], lr=1.0)
    schedule = StepSchedule(opt, lr0=1.0, step_size=10, gamma=0.5)
    for _ in range(10):
        schedule.step()
    assert opt.lr == pytest.approx(0.5)
    for _ in range(10):
        schedule.step()
    assert opt.lr == pytest.approx(0.25)
    with pytest.raises(ModelError):
        StepSchedule(opt, lr0=1.0, step_size=0)


def test_early_stopping_triggers_after_patience():
    stopper = EarlyStopping(patience=3)
    metrics = [1.0, 0.9, 0.91, 0.92, 0.93]
    decisions = [stopper.update(m) for m in metrics]
    assert decisions == [False, False, False, False, True]
    assert stopper.best == 0.9


def test_early_stopping_resets_on_improvement():
    stopper = EarlyStopping(patience=2)
    assert not stopper.update(1.0)
    assert not stopper.update(1.1)
    assert not stopper.update(0.5)  # improvement resets the counter
    assert not stopper.update(0.6)
    assert stopper.update(0.7)


def test_early_stopping_validates():
    with pytest.raises(ModelError):
        EarlyStopping(patience=0)
    with pytest.raises(ModelError):
        EarlyStopping(min_delta=-1.0)
