"""Tests of the multipath / ghost-target model."""

import numpy as np
import pytest

from repro.errors import RadarError
from repro.radar.multipath import (
    DESK_SURFACE,
    SIDE_WALL,
    ReflectingSurface,
    ghost_scatterers,
    with_multipath,
)
from repro.radar.scene import Scatterers


def scatterers_at(positions, amplitudes=None):
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    n = len(positions)
    return Scatterers(
        positions=positions,
        velocities=np.zeros((n, 3)),
        amplitudes=np.ones(n) if amplitudes is None
        else np.asarray(amplitudes, dtype=float),
    )


def test_surface_normal_normalised():
    surface = ReflectingSurface(
        point=np.zeros(3), normal=np.array([0.0, 0.0, 5.0])
    )
    assert np.allclose(surface.normal, [0, 0, 1])


def test_surface_validation():
    with pytest.raises(RadarError):
        ReflectingSurface(point=np.zeros(3), normal=np.zeros(3))
    with pytest.raises(RadarError):
        ReflectingSurface(
            point=np.zeros(3), normal=np.array([0, 0, 1.0]),
            reflectivity=2.0,
        )
    with pytest.raises(RadarError):
        ReflectingSurface(point=np.zeros(2), normal=np.array([0, 0, 1.0]))


def test_mirror_points_involution():
    surface = DESK_SURFACE
    rng = np.random.default_rng(0)
    points = rng.normal(size=(5, 3))
    mirrored = surface.mirror_points(points)
    back = surface.mirror_points(mirrored)
    assert np.allclose(back, points, atol=1e-12)


def test_mirror_point_across_desk():
    mirrored = DESK_SURFACE.mirror_points(np.array([[0.3, 0.0, 0.0]]))
    # Desk at z = -0.25 with +z normal: z -> -0.5 - z.
    assert np.allclose(mirrored, [[0.3, 0.0, -0.5]])


def test_mirror_vectors_flip_normal_component():
    velocity = np.array([[0.1, 0.2, 0.3]])
    mirrored = DESK_SURFACE.mirror_vectors(velocity)
    assert np.allclose(mirrored, [[0.1, 0.2, -0.3]])


def test_ghosts_farther_than_originals():
    hand = scatterers_at([[0.3, 0.0, 0.0]])
    ghosts = ghost_scatterers(hand, [DESK_SURFACE])
    assert len(ghosts) == 1
    assert np.linalg.norm(ghosts.positions[0]) > np.linalg.norm(
        hand.positions[0]
    )


def test_ghost_amplitude_scaled():
    hand = scatterers_at([[0.3, 0.0, 0.0]], amplitudes=[0.8])
    ghosts = ghost_scatterers(hand, [DESK_SURFACE])
    assert ghosts.amplitudes[0] == pytest.approx(
        0.8 * DESK_SURFACE.reflectivity
    )


def test_weak_ghosts_dropped():
    hand = scatterers_at([[0.3, 0.0, 0.0]], amplitudes=[1e-4])
    ghosts = ghost_scatterers(hand, [DESK_SURFACE], min_amplitude=1e-3)
    assert len(ghosts) == 0
    with pytest.raises(RadarError):
        ghost_scatterers(hand, [DESK_SURFACE], min_amplitude=-1.0)


def test_multiple_surfaces_stack():
    hand = scatterers_at([[0.3, 0.0, 0.0], [0.35, 0.02, 0.01]])
    combined = with_multipath(hand, [DESK_SURFACE, SIDE_WALL])
    assert len(combined) == 2 + 2 + 2


def test_ghosts_integrate_with_synthesis():
    from repro.config import RadarConfig
    from repro.radar.antenna import iwr1443_array
    from repro.radar.chirp import synthesize_frame

    radar = RadarConfig(noise_std=0.0)
    array = iwr1443_array(radar)
    hand = scatterers_at([[0.3, 0.0, 0.0]])
    direct = synthesize_frame(radar, array, hand)
    combined = synthesize_frame(
        radar, array, with_multipath(hand, [DESK_SURFACE])
    )
    # The ghost adds measurable extra energy at a different beat tone.
    assert np.abs(combined - direct).max() > 0
    spectrum = np.abs(np.fft.fft(combined[0, 0]))
    direct_spec = np.abs(np.fft.fft(direct[0, 0]))
    # Ghost range = 0.583 m -> a second spectral peak beyond the hand's.
    hand_bin = int(round(0.3 / radar.range_resolution_m))
    ghost_bin = int(
        round(np.linalg.norm([0.3, 0.0, -0.5]) / radar.range_resolution_m)
    )
    assert spectrum[ghost_bin] > 3.0 * direct_spec[ghost_bin]
    assert spectrum[hand_bin] == pytest.approx(
        direct_spec[hand_bin], rel=0.2
    )
