"""Tests of dataset containers, camera ground truth, the collection
campaign and cross-validation splits."""

import numpy as np
import pytest

from repro.config import CampaignConfig, DspConfig, RadarConfig
from repro.data.collection import CampaignGenerator, CaptureOptions
from repro.data.dataset import HandPoseDataset, SegmentMeta
from repro.data.groundtruth import CameraNoiseModel, camera_ground_truth
from repro.data.splits import kfold_user_splits
from repro.errors import DatasetError
from repro.hand.subjects import make_subjects
from repro.radar.clutter import BodyPosition


def make_dataset(n=6, users=(1, 1, 1, 2, 2, 2)):
    rng = np.random.default_rng(0)
    return HandPoseDataset(
        segments=rng.normal(size=(n, 2, 4, 8, 8)).astype(np.float32),
        labels=rng.normal(size=(n, 21, 3)).astype(np.float32),
        true_joints=rng.normal(size=(n, 21, 3)).astype(np.float32),
        meta=[
            SegmentMeta(user_id=u, environment="lab", gesture="fist")
            for u in users
        ],
    )


# ----------------------------------------------------------------------
# Dataset container
# ----------------------------------------------------------------------
def test_dataset_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(DatasetError):
        HandPoseDataset(
            segments=rng.normal(size=(3, 2, 4, 8, 8)),
            labels=rng.normal(size=(2, 21, 3)),
            true_joints=rng.normal(size=(3, 21, 3)),
            meta=[SegmentMeta(user_id=1)] * 3,
        )
    with pytest.raises(DatasetError):
        HandPoseDataset(
            segments=rng.normal(size=(3, 2, 4, 8)),
            labels=rng.normal(size=(3, 21, 3)),
            true_joints=rng.normal(size=(3, 21, 3)),
            meta=[SegmentMeta(user_id=1)] * 3,
        )
    with pytest.raises(DatasetError):
        HandPoseDataset(
            segments=rng.normal(size=(3, 2, 4, 8, 8)),
            labels=rng.normal(size=(3, 21, 3)),
            true_joints=rng.normal(size=(3, 21, 3)),
            meta=[SegmentMeta(user_id=1)] * 2,
        )


def test_dataset_subset_and_user_filter():
    ds = make_dataset()
    sub = ds.subset([0, 3])
    assert len(sub) == 2
    assert list(sub.user_ids) == [1, 2]
    user2 = ds.for_user(2)
    assert len(user2) == 3
    assert set(user2.user_ids) == {2}


def test_dataset_filter_by_meta():
    ds = make_dataset()
    assert len(ds.filter(environment="lab")) == 6
    assert len(ds.filter(environment="moon")) == 0
    assert len(ds.filter(user_id=1, gesture="fist")) == 3


def test_dataset_concatenate():
    a, b = make_dataset(3, (1, 1, 1)), make_dataset(2, (2, 2))
    merged = HandPoseDataset.concatenate([a, b])
    assert len(merged) == 5
    with pytest.raises(DatasetError):
        HandPoseDataset.concatenate([])


def test_dataset_save_load_round_trip(tmp_path):
    ds = make_dataset()
    path = tmp_path / "data.npz"
    ds.save(path)
    loaded = HandPoseDataset.load(path)
    assert np.allclose(loaded.segments, ds.segments)
    assert np.allclose(loaded.labels, ds.labels)
    assert loaded.meta == ds.meta
    with pytest.raises(DatasetError):
        HandPoseDataset.load(tmp_path / "missing.npz")


def test_dataset_mmap_load_is_lazy(tmp_path):
    """``load(mmap_mode="r")`` must map the archive, not copy it: every
    array comes back as a read-only np.memmap into the file and dataset
    construction leaves it untouched (no eager float32 re-cast)."""
    ds = make_dataset(6)
    path = tmp_path / "shard.npz"
    ds.save(path, compress=False)
    lazy = HandPoseDataset.load(path, mmap_mode="r")
    for name in ("segments", "labels", "true_joints"):
        array = getattr(lazy, name)
        assert isinstance(array, np.memmap), name
        assert array.mode == "r", name
        assert array.offset > 0, name  # maps inside the zip, not at 0
        assert np.array_equal(array, getattr(ds, name)), name
    assert lazy.meta == ds.meta
    # Batch-style fancy indexing still works off the mapped arrays.
    batch = lazy.segments[np.array([1, 3])]
    assert np.array_equal(batch, ds.segments[[1, 3]])


def test_dataset_mmap_rejects_compressed_and_bad_mode(tmp_path):
    ds = make_dataset()
    path = tmp_path / "data.npz"
    ds.save(path)  # compressed by default
    with pytest.raises(DatasetError):
        HandPoseDataset.load(path, mmap_mode="r")
    ds.save(path, compress=False)
    with pytest.raises(DatasetError):
        HandPoseDataset.load(path, mmap_mode="r+")


# ----------------------------------------------------------------------
# Camera ground truth
# ----------------------------------------------------------------------
def test_camera_gt_adds_bounded_noise():
    joints = np.zeros((21, 3))
    noisy = camera_ground_truth(
        joints, np.random.default_rng(0),
        CameraNoiseModel(glitch_rate=0.0),
    )
    errors = np.linalg.norm(noisy - joints, axis=1)
    assert errors.mean() > 0
    assert errors.max() < 0.05


def test_camera_gt_depth_noise_dominates():
    joints = np.zeros((21, 3))
    model = CameraNoiseModel(glitch_rate=0.0)
    samples = np.stack(
        [
            camera_ground_truth(joints, np.random.default_rng(i), model)
            for i in range(300)
        ]
    )
    stds = samples.std(axis=0).mean(axis=0)
    assert stds[0] > 1.5 * stds[1]  # depth (x) noisier than lateral


def test_camera_gt_fingertips_noisier_than_palm():
    from repro.hand.joints import PALM_JOINTS

    joints = np.zeros((21, 3))
    model = CameraNoiseModel(glitch_rate=0.0)
    samples = np.stack(
        [
            camera_ground_truth(joints, np.random.default_rng(i), model)
            for i in range(300)
        ]
    )
    per_joint = np.linalg.norm(samples, axis=2).mean(axis=0)
    palm = np.mean([per_joint[j] for j in PALM_JOINTS])
    tips = np.mean([per_joint[j] for j in (4, 8, 12, 16, 20)])
    assert tips > 1.2 * palm


def test_camera_gt_glitches_occur():
    joints = np.zeros((21, 3))
    model = CameraNoiseModel(glitch_rate=0.5, glitch_sigma_m=0.1)
    noisy = camera_ground_truth(joints, np.random.default_rng(0), model)
    assert np.linalg.norm(noisy, axis=1).max() > 0.03


def test_camera_gt_validates():
    with pytest.raises(DatasetError):
        camera_ground_truth(np.zeros((20, 3)), np.random.default_rng(0))
    with pytest.raises(DatasetError):
        CameraNoiseModel(glitch_rate=2.0)
    with pytest.raises(DatasetError):
        CameraNoiseModel(lateral_sigma_m=-1.0)
    with pytest.raises(DatasetError):
        CameraNoiseModel(finger_noise_scale=0.5)


# ----------------------------------------------------------------------
# Collection campaign
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_generator():
    return CampaignGenerator(
        RadarConfig(samples_per_chirp=32, chirp_loops=8),
        DspConfig(range_bins=16, doppler_bins=4, azimuth_bins=8,
                  elevation_bins=8, segment_frames=2),
        CampaignConfig(num_users=2, segments_per_user=4),
    )


def test_capture_options_validate():
    with pytest.raises(DatasetError):
        CaptureOptions(environment="moon")
    with pytest.raises(DatasetError):
        CaptureOptions(glove="leather")
    with pytest.raises(DatasetError):
        CaptureOptions(handheld="sword")
    with pytest.raises(DatasetError):
        CaptureOptions(occluder="wall")
    with pytest.raises(DatasetError):
        CaptureOptions(segments_per_capture=0)


def test_condition_tags():
    assert CaptureOptions().condition_tag == "baseline"
    assert CaptureOptions(glove="silk").condition_tag == "glove:silk"
    tag = CaptureOptions(
        glove="silk", handheld="pen", occluder="cloth",
        body_position=BodyPosition.SIDE,
    ).condition_tag
    assert "glove:silk" in tag and "handheld:pen" in tag
    assert "occluder:cloth" in tag and "body:side" in tag


def test_generate_campaign_counts(small_generator):
    dataset = small_generator.generate(seed=1)
    assert len(dataset) == 8  # 2 users x 4 segments
    assert set(dataset.user_ids) == {1, 2}
    assert dataset.segments.shape[1:] == (2, 4, 16, 16)


def test_generate_rotates_environments(small_generator):
    dataset = small_generator.generate(
        subjects=make_subjects(1),
        segments_per_user=12,
        seed=2,
    )
    environments = {m.environment for m in dataset.meta}
    assert len(environments) >= 2


def test_generate_fixed_condition(small_generator):
    options = CaptureOptions(
        environment="lab", distance_m=0.5, angle_deg=15.0, glove="cotton"
    )
    dataset = small_generator.generate(
        subjects=make_subjects(1), options=options, segments_per_user=4,
        seed=3, rotate_environments=False,
    )
    for meta in dataset.meta:
        assert meta.environment == "lab"
        assert meta.distance_m == pytest.approx(0.5)
        assert meta.angle_deg == 15.0
        assert meta.condition == "glove:cotton"


def test_generate_deterministic(small_generator):
    a = small_generator.generate(seed=7)
    b = small_generator.generate(seed=7)
    assert np.allclose(a.segments, b.segments)
    assert np.allclose(a.labels, b.labels)


def test_labels_near_true_joints(small_generator):
    dataset = small_generator.generate(seed=4)
    errors = np.linalg.norm(
        dataset.labels - dataset.true_joints, axis=2
    )
    assert errors.mean() < 0.02  # camera noise is mm-scale
    assert errors.mean() > 0.0


def test_hand_stays_in_configured_distance_band(small_generator):
    dataset = small_generator.generate(seed=5)
    wrists = dataset.true_joints[:, 0, :]
    ranges = np.linalg.norm(wrists, axis=1)
    lo, hi = small_generator.campaign.distance_range_m
    assert np.all(ranges > lo - 0.06)
    assert np.all(ranges < hi + 0.12)


# ----------------------------------------------------------------------
# Splits
# ----------------------------------------------------------------------
def test_kfold_splits_pair_users():
    user_ids = np.repeat(np.arange(1, 11), 5)
    folds = kfold_user_splits(user_ids, 5)
    assert len(folds) == 5
    assert folds[0][2] == [1, 2]
    assert folds[4][2] == [9, 10]
    for train_idx, test_idx, test_users in folds:
        assert len(train_idx) + len(test_idx) == len(user_ids)
        assert not set(train_idx) & set(test_idx)
        assert set(user_ids[test_idx]) == set(test_users)


def test_kfold_validates():
    with pytest.raises(DatasetError):
        kfold_user_splits([1, 1, 2, 2], 5)
    with pytest.raises(DatasetError):
        kfold_user_splits([1, 2, 3], 1)
