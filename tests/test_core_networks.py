"""Tests of mmSpaceNet, the temporal model and the joint regressor."""

import numpy as np
import pytest

from repro.config import DspConfig, ModelConfig
from repro.core.mmspacenet import AttentionResidualBlock, MmSpaceNet
from repro.core.regressor import HandJointRegressor
from repro.core.temporal import TemporalModel
from repro.errors import ModelError
from repro.nn.tensor import Tensor


@pytest.fixture
def dsp(small_dsp):
    return small_dsp


@pytest.fixture
def model_config(small_model):
    return small_model


def make_input(dsp, batch=2):
    rng = np.random.default_rng(0)
    return Tensor(
        rng.normal(
            size=(
                batch,
                dsp.segment_frames,
                dsp.doppler_bins,
                dsp.range_bins,
                dsp.angle_bins_total,
            )
        ).astype(np.float32)
    )


def test_residual_block_preserves_shape():
    block = AttentionResidualBlock(4, depth=1)
    x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 8, 8)))
    assert block(x).shape == (2, 4, 8, 8)


def test_residual_block_depth_divisibility():
    block = AttentionResidualBlock(4, depth=2)
    with pytest.raises(ModelError):
        block(Tensor(np.ones((1, 4, 6, 6))))  # 6 not divisible by 4


def test_residual_block_attention_optional():
    block = AttentionResidualBlock(
        4, depth=1, use_channel_attention=False,
        use_spatial_attention=False,
    )
    assert block.channel_attention is None
    assert block.spatial_attention is None
    x = Tensor(np.random.default_rng(0).normal(size=(1, 4, 8, 8)))
    assert block(x).shape == (1, 4, 8, 8)


def test_mmspacenet_output_shape(dsp, model_config):
    net = MmSpaceNet(dsp, model_config)
    out = net(make_input(dsp))
    assert out.shape == (2, dsp.segment_frames, model_config.feature_dim)


def test_mmspacenet_validates_segment_shape(dsp, model_config):
    net = MmSpaceNet(dsp, model_config)
    bad = Tensor(np.ones((1, 3, dsp.doppler_bins, dsp.range_bins,
                          dsp.angle_bins_total), dtype=np.float32))
    with pytest.raises(ModelError):
        net(bad)
    with pytest.raises(ModelError):
        net(Tensor(np.ones((2, 3, 4), dtype=np.float32)))


def test_mmspacenet_attention_flags(dsp):
    config = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
        lstm_hidden=16, use_frame_attention=False,
        use_velocity_attention=False, use_spatial_attention=False,
    )
    net = MmSpaceNet(dsp, config)
    assert net.frame_attention is None
    assert net.input_velocity_attention is None
    out = net(make_input(dsp))
    assert out.shape == (2, dsp.segment_frames, 16)


def test_temporal_model_shape(model_config):
    temporal = TemporalModel(model_config)
    x = Tensor(np.random.default_rng(0).normal(
        size=(3, 4, model_config.feature_dim)).astype(np.float32))
    out = temporal(x)
    assert out.shape == (3, model_config.lstm_hidden)
    with pytest.raises(ModelError):
        temporal(Tensor(np.ones((3, 4, 7), dtype=np.float32)))


def test_regressor_forward_shape(dsp, model_config):
    reg = HandJointRegressor(dsp, model_config)
    out = reg(make_input(dsp))
    assert out.shape == (2, 21, 3)


def test_regressor_gradients_reach_every_parameter(dsp, model_config):
    reg = HandJointRegressor(dsp, model_config)
    out = reg(make_input(dsp))
    (out * out).sum().backward()
    for name, param in reg.named_parameters():
        assert param.grad is not None, name


def test_regressor_predict_denormalizes(dsp, model_config):
    reg = HandJointRegressor(dsp, model_config)
    label_mean = np.full((21, 3), 0.3, dtype=np.float32)
    label_std = np.full((21, 3), 0.05, dtype=np.float32)
    reg.set_normalization(0.0, 1.0, label_mean, label_std)
    segments = np.random.default_rng(0).normal(
        size=(3, dsp.segment_frames, dsp.doppler_bins, dsp.range_bins,
              dsp.angle_bins_total)
    ).astype(np.float32)
    pred = reg.predict(segments)
    assert pred.shape == (3, 21, 3)
    # Untrained outputs are near zero pre-denormalisation, so predictions
    # cluster near the label mean.
    assert np.abs(pred - 0.3).mean() < 0.2


def test_regressor_predict_accepts_single_segment(dsp, model_config):
    reg = HandJointRegressor(dsp, model_config)
    segment = np.zeros(
        (dsp.segment_frames, dsp.doppler_bins, dsp.range_bins,
         dsp.angle_bins_total), dtype=np.float32,
    )
    assert reg.predict(segment).shape == (1, 21, 3)
    with pytest.raises(ModelError):
        reg.predict(np.zeros((2, 3)))


def test_regressor_predict_restores_training_mode(dsp, model_config):
    reg = HandJointRegressor(dsp, model_config)
    reg.train()
    segment = np.zeros(
        (1, dsp.segment_frames, dsp.doppler_bins, dsp.range_bins,
         dsp.angle_bins_total), dtype=np.float32,
    )
    reg.predict(segment)
    assert reg.training


def test_set_normalization_validates(dsp, model_config):
    reg = HandJointRegressor(dsp, model_config)
    with pytest.raises(ModelError):
        reg.set_normalization(0.0, 0.0, np.zeros((21, 3)),
                              np.ones((21, 3)))
    with pytest.raises(ModelError):
        reg.set_normalization(0.0, 1.0, np.zeros((21, 3)),
                              np.zeros((21, 3)))


def test_normalization_round_trip(dsp, model_config):
    reg = HandJointRegressor(dsp, model_config)
    mean = np.random.default_rng(0).normal(size=(21, 3)).astype(np.float32)
    std = np.abs(np.random.default_rng(1).normal(size=(21, 3))).astype(
        np.float32
    ) + 0.1
    reg.set_normalization(1.0, 2.0, mean, std)
    joints = np.random.default_rng(2).normal(size=(4, 21, 3))
    assert np.allclose(
        reg.denormalize_labels(reg.normalize_labels(joints)), joints,
        atol=1e-5,
    )
