"""Tests of the TDM-MIMO virtual array geometry."""

import numpy as np
import pytest

from repro.config import RadarConfig
from repro.errors import RadarError
from repro.radar.antenna import VirtualArray, iwr1443_array


@pytest.fixture
def array():
    return iwr1443_array(RadarConfig())


def test_virtual_count(array):
    assert array.num_tx == 3
    assert array.num_rx == 4
    assert array.num_virtual == 12
    assert array.positions.shape == (12, 2)


def test_azimuth_row_is_contiguous_ula(array):
    """TX1 and TX3 virtual elements form 8 contiguous half-wavelength
    azimuth elements at zero elevation."""
    positions = array.positions
    azimuth_row = positions[positions[:, 1] == 0.0]
    ys = np.sort(azimuth_row[:, 0])
    assert len(ys) == 8
    assert np.allclose(np.diff(ys), 0.5)


def test_elevated_row_from_tx2(array):
    positions = array.positions
    elevated = positions[positions[:, 1] != 0.0]
    assert len(elevated) == 4
    assert np.allclose(elevated[:, 1], 0.5)


def test_tx_of_virtual(array):
    tx = array.tx_of_virtual()
    assert tx.shape == (12,)
    assert np.array_equal(tx, np.repeat([0, 1, 2], 4))


def test_steering_phase_boresight_is_zero(array):
    phases = array.steering_phases(0.0, 0.0)
    assert np.allclose(phases, 0.0)


def test_steering_phase_increases_along_aperture(array):
    phases = array.steering_phases(np.radians(20.0), 0.0)
    azimuth_row = array.positions[:, 1] == 0.0
    ys = array.positions[azimuth_row, 0]
    expected = 2 * np.pi * ys * np.sin(np.radians(20.0))
    assert np.allclose(phases[azimuth_row], expected)


def test_steering_phase_broadcasting(array):
    az = np.linspace(-0.5, 0.5, 7)
    el = np.zeros(7)
    phases = array.steering_phases(az, el)
    assert phases.shape == (7, 12)


def test_elevation_phase_only_on_elevated_row(array):
    phases = array.steering_phases(0.0, np.radians(15.0))
    elevated = array.positions[:, 1] != 0.0
    assert np.allclose(phases[~elevated], 0.0)
    assert np.all(np.abs(phases[elevated]) > 0)


def test_generic_fallback_for_other_counts():
    config = RadarConfig(num_tx=2, num_rx=2)
    array = iwr1443_array(config)
    assert array.num_virtual == 4
    ys = np.sort(array.positions[:, 0])
    assert np.allclose(np.diff(ys), 0.5)


def test_virtual_array_validates_shapes():
    with pytest.raises(RadarError):
        VirtualArray(
            tx_positions=np.zeros((3, 3)), rx_positions=np.zeros((4, 2))
        )
