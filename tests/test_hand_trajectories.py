"""Tests of wrist trajectory patterns."""

import numpy as np
import pytest

from repro.errors import KinematicsError
from repro.hand.animation import GestureSequence, Keyframe
from repro.hand.trajectories import (
    TRAJECTORY_LIBRARY,
    apply_trajectory,
    circle,
    hold,
    list_trajectories,
    push_pull,
    swipe,
)


def test_library_contents():
    names = list_trajectories()
    assert "hold" in names
    assert "swipe_right" in names
    assert "push_pull" in names
    for name in names:
        trajectory = TRAJECTORY_LIBRARY[name]()
        offset = trajectory(0.3)
        assert np.asarray(offset).shape == (3,)


def test_hold_is_zero():
    trajectory = hold()
    assert np.allclose(trajectory(0.0), 0.0)
    assert np.allclose(trajectory(5.0), 0.0)


def test_swipe_reaches_extent_and_saturates():
    trajectory = swipe("left", extent_m=0.1, duration_s=0.5)
    assert np.allclose(trajectory(0.0), 0.0)
    end = trajectory(0.5)
    assert end[1] == pytest.approx(0.1)
    assert np.allclose(trajectory(2.0), end)  # holds after completion


def test_swipe_directions_orthogonal():
    right = swipe("right")(0.8)
    up = swipe("up")(0.8)
    assert right[1] < 0 and right[2] == 0
    assert up[2] > 0 and up[1] == 0


def test_swipe_validates():
    with pytest.raises(KinematicsError):
        swipe("diagonal")
    with pytest.raises(KinematicsError):
        swipe("left", extent_m=0.0)


def test_push_pull_periodic_towards_radar():
    trajectory = push_pull(extent_m=0.08, period_s=1.0)
    assert np.allclose(trajectory(0.0), 0.0)
    half = trajectory(0.5)
    assert half[0] == pytest.approx(-0.08)  # towards the radar
    assert np.allclose(trajectory(1.0), trajectory(0.0), atol=1e-12)


def test_circle_stays_on_radius():
    trajectory = circle(radius_m=0.05, period_s=1.0)
    centre = np.array([0.0, -0.05, 0.0])
    for t in np.linspace(0, 1, 9):
        offset = trajectory(float(t))
        assert np.linalg.norm(offset - centre) == pytest.approx(0.05)


def test_apply_trajectory_offsets_wrists():
    sequence = GestureSequence(
        [Keyframe(0.0, "fist")],
        base_position=np.array([0.3, 0.0, 0.0]),
        tremor_amplitude_m=0.0,
        drift_amplitude_m=0.0,
    )
    poses = sequence.sample(0.1, 6)
    moved = apply_trajectory(poses, swipe("left", 0.1, 0.5), 0.1)
    assert len(moved) == len(poses)
    assert np.allclose(moved[0].wrist_position, poses[0].wrist_position)
    assert moved[5].wrist_position[1] == pytest.approx(
        poses[5].wrist_position[1] + 0.1
    )
    # Originals untouched.
    assert poses[5].wrist_position[1] == pytest.approx(0.0)


def test_apply_trajectory_validates():
    sequence = GestureSequence([Keyframe(0.0, "fist")])
    poses = sequence.sample(0.1, 2)
    with pytest.raises(KinematicsError):
        apply_trajectory(poses, hold(), 0.0)
    with pytest.raises(KinematicsError):
        apply_trajectory(poses, lambda t: np.zeros(2), 0.1)
