"""Tests of hand forward kinematics."""

import numpy as np
import pytest

from repro.errors import KinematicsError
from repro.hand.joints import FINGER_CHAINS, FINGERS, WRIST
from repro.hand.kinematics import (
    HandPose,
    default_orientation,
    forward_kinematics,
    orientation_from_yaw_pitch,
    phalange_directions,
    rotation_about_axis,
)
from repro.hand.shape import HandShape


@pytest.fixture
def shape():
    return HandShape()


def test_rotation_about_axis_is_a_rotation():
    rot = rotation_about_axis(np.array([0.0, 0.0, 1.0]), 0.7)
    assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-12)
    assert np.isclose(np.linalg.det(rot), 1.0)


def test_rotation_about_axis_quarter_turn():
    rot = rotation_about_axis(np.array([0.0, 0.0, 1.0]), np.pi / 2)
    assert np.allclose(rot @ np.array([1.0, 0.0, 0.0]),
                       [0.0, 1.0, 0.0], atol=1e-12)


def test_rotation_rejects_zero_axis():
    with pytest.raises(KinematicsError):
        rotation_about_axis(np.zeros(3), 0.5)


def test_default_orientation_is_rotation():
    rot = default_orientation()
    assert np.allclose(rot @ rot.T, np.eye(3))
    assert np.isclose(np.linalg.det(rot), 1.0)


def test_fk_output_shape(shape):
    joints = forward_kinematics(shape, HandPose())
    assert joints.shape == (21, 3)


def test_fk_wrist_at_pose_position(shape):
    pose = HandPose(wrist_position=np.array([0.25, 0.1, -0.05]))
    joints = forward_kinematics(shape, pose)
    assert np.allclose(joints[WRIST], [0.25, 0.1, -0.05])


def test_fk_preserves_phalange_lengths(shape):
    """Bone lengths are pose-invariant (rigid phalanges)."""
    rng = np.random.default_rng(0)
    angles = np.zeros((5, 4))
    angles[:, 0] = rng.uniform(0, 1.2, 5)
    angles[:, 1] = rng.uniform(-0.2, 0.2, 5)
    angles[:, 2] = rng.uniform(0, 1.4, 5)
    angles[:, 3] = rng.uniform(0, 0.8, 5)
    bent = forward_kinematics(shape, HandPose(finger_angles=angles))
    for finger in FINGERS:
        chain = FINGER_CHAINS[finger]
        lengths = shape.phalange_lengths[finger]
        for seg in range(3):
            measured = np.linalg.norm(
                bent[chain[seg + 1]] - bent[chain[seg]]
            )
            assert measured == pytest.approx(lengths[seg], rel=1e-9)


def test_fk_zero_angles_gives_straight_fingers(shape):
    joints = forward_kinematics(
        shape, HandPose(wrist_position=np.zeros(3), orientation=np.eye(3))
    )
    for finger in FINGERS:
        a, b, c, d = FINGER_CHAINS[finger]
        ab = joints[b] - joints[a]
        ad = joints[d] - joints[a]
        cos = ab @ ad / (np.linalg.norm(ab) * np.linalg.norm(ad))
        assert cos > 0.999999


def test_fk_flexion_curls_towards_palm(shape):
    """Flexing the index finger moves its tip towards the palm (-z in the
    hand frame)."""
    straight = forward_kinematics(
        shape, HandPose(wrist_position=np.zeros(3), orientation=np.eye(3))
    )
    angles = np.zeros((5, 4))
    angles[1] = [1.2, 0.0, 1.4, 0.8]  # index curl
    bent = forward_kinematics(
        shape,
        HandPose(finger_angles=angles, wrist_position=np.zeros(3),
                 orientation=np.eye(3)),
    )
    tip = FINGER_CHAINS["index"][3]
    assert bent[tip][2] < straight[tip][2] - 0.02


def test_fk_orientation_rotates_whole_hand(shape):
    pose = HandPose(wrist_position=np.zeros(3))
    joints = forward_kinematics(shape, pose)
    rot = orientation_from_yaw_pitch(0.5, -0.2)
    rotated = forward_kinematics(
        shape, HandPose(wrist_position=np.zeros(3), orientation=rot)
    )
    base = forward_kinematics(
        shape,
        HandPose(wrist_position=np.zeros(3),
                 orientation=default_orientation()),
    )
    expected = base @ (rot @ default_orientation().T).T
    assert np.allclose(rotated, expected, atol=1e-9)
    assert joints.shape == rotated.shape


def test_pose_validates_angle_shape():
    with pytest.raises(KinematicsError):
        HandPose(finger_angles=np.zeros((4, 4)))


def test_pose_validates_angle_limits():
    angles = np.zeros((5, 4))
    angles[0, 0] = 5.0
    with pytest.raises(KinematicsError):
        HandPose(finger_angles=angles)


def test_pose_validates_orientation():
    with pytest.raises(KinematicsError):
        HandPose(orientation=np.ones((3, 3)))


def test_pose_with_placement_keeps_angles():
    angles = np.zeros((5, 4))
    angles[2, 0] = 0.9
    pose = HandPose(finger_angles=angles)
    moved = pose.with_placement(np.array([0.5, 0, 0]), default_orientation())
    assert np.allclose(moved.finger_angles, angles)
    assert np.allclose(moved.wrist_position, [0.5, 0, 0])


def test_phalange_directions_unit_norm(shape):
    joints = forward_kinematics(shape, HandPose())
    dirs = phalange_directions(joints)
    assert dirs.shape == (20, 3)
    assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0)


def test_phalange_directions_rejects_bad_shape():
    with pytest.raises(KinematicsError):
        phalange_directions(np.zeros((20, 3)))
