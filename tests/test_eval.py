"""Tests of evaluation metrics and report rendering."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.metrics import (
    auc,
    error_cdf,
    group_metrics,
    mpjpe,
    pck,
    pck_curve,
    per_joint_errors,
)
from repro.eval.report import (
    format_mm,
    render_cdf_summary,
    render_series,
    render_table,
)
from repro.hand.joints import FINGER_JOINTS, PALM_JOINTS


def shifted(gt, mm, joints=None):
    pred = gt.copy()
    shift = mm / 1000.0
    if joints is None:
        pred += np.array([shift, 0, 0])
    else:
        pred[:, joints] += np.array([shift, 0, 0])
    return pred


@pytest.fixture
def gt():
    rng = np.random.default_rng(0)
    return rng.normal(0.3, 0.05, size=(10, 21, 3))


def test_per_joint_errors_in_mm(gt):
    pred = shifted(gt, 25.0)
    errors = per_joint_errors(pred, gt)
    assert errors.shape == (10, 21)
    assert np.allclose(errors, 25.0)


def test_per_joint_errors_accepts_single_sample(gt):
    errors = per_joint_errors(gt[0], gt[0])
    assert errors.shape == (1, 21)
    assert np.allclose(errors, 0.0)


def test_per_joint_errors_validates(gt):
    with pytest.raises(EvaluationError):
        per_joint_errors(gt[:, :20], gt[:, :20])
    with pytest.raises(EvaluationError):
        per_joint_errors(gt[:5], gt)


def test_mpjpe_exact(gt):
    assert mpjpe(shifted(gt, 10.0), gt) == pytest.approx(10.0)


def test_mpjpe_joint_subset(gt):
    pred = shifted(gt, 30.0, joints=list(PALM_JOINTS))
    assert mpjpe(pred, gt, joints=PALM_JOINTS) == pytest.approx(30.0)
    assert mpjpe(pred, gt, joints=FINGER_JOINTS) == pytest.approx(0.0)


def test_pck_threshold_behaviour(gt):
    pred = shifted(gt, 30.0)
    assert pck(pred, gt, threshold_mm=40.0) == pytest.approx(100.0)
    assert pck(pred, gt, threshold_mm=20.0) == pytest.approx(0.0)
    with pytest.raises(EvaluationError):
        pck(pred, gt, threshold_mm=0.0)


def test_pck_curve_monotone(gt):
    rng = np.random.default_rng(1)
    pred = gt + rng.normal(0, 0.01, size=gt.shape)
    thresholds, curve = pck_curve(pred, gt)
    assert len(thresholds) == len(curve)
    assert np.all(np.diff(curve) >= 0)
    assert curve[-1] == pytest.approx(100.0, abs=1.0)


def test_pck_curve_validates(gt):
    with pytest.raises(EvaluationError):
        pck_curve(gt, gt, thresholds_mm=np.array([5.0]))


def test_auc_perfect_prediction(gt):
    thresholds, curve = pck_curve(gt, gt)
    assert auc(thresholds, curve) == pytest.approx(1.0, abs=0.02)


def test_auc_fixed_error(gt):
    """Constant 30 mm error over 0-60 mm thresholds: PCK jumps from 0 to
    100 at 30 mm, so AUC is ~0.5."""
    pred = shifted(gt, 30.0)
    thresholds, curve = pck_curve(pred, gt)
    assert auc(thresholds, curve) == pytest.approx(0.5, abs=0.02)


def test_auc_validates():
    with pytest.raises(EvaluationError):
        auc(np.array([0.0, 1.0]), np.array([1.0]))
    with pytest.raises(EvaluationError):
        auc(np.array([1.0, 0.0]), np.array([50.0, 50.0]))


def test_error_cdf_properties(gt):
    rng = np.random.default_rng(2)
    pred = gt + rng.normal(0, 0.01, size=gt.shape)
    errors, fractions = error_cdf(pred, gt)
    assert np.all(np.diff(errors) >= 0)
    assert fractions[-1] == pytest.approx(1.0)
    assert len(errors) == 10 * 21


def test_group_metrics_structure(gt):
    rng = np.random.default_rng(3)
    pred = gt + rng.normal(0, 0.005, size=gt.shape)
    groups = group_metrics(pred, gt)
    assert set(groups) == {"palm", "fingers", "overall"}
    overall = groups["overall"]
    assert 0 < overall.mpjpe_mm < 30
    assert 0 < overall.pck_percent <= 100
    assert 0 < overall.auc <= 1


def test_group_metrics_palm_fingers_split(gt):
    pred = shifted(gt, 35.0, joints=list(FINGER_JOINTS))
    groups = group_metrics(pred, gt)
    assert groups["fingers"].mpjpe_mm == pytest.approx(35.0)
    assert groups["palm"].mpjpe_mm == pytest.approx(0.0)
    assert (
        groups["palm"].mpjpe_mm
        < groups["overall"].mpjpe_mm
        < groups["fingers"].mpjpe_mm
    )


# ----------------------------------------------------------------------
# Report rendering
# ----------------------------------------------------------------------
def test_format_mm():
    assert format_mm(18.34) == "18.3"


def test_render_table_alignment():
    text = render_table(
        ["method", "mpjpe"],
        [["mmHand", "18.3"], ["HandFi", "20.7"]],
        title="Table I",
    )
    lines = text.splitlines()
    assert lines[0] == "Table I"
    assert "method" in lines[1]
    assert "mmHand" in lines[3]


def test_render_table_validates_width():
    with pytest.raises(EvaluationError):
        render_table(["a", "b"], [["only one"]])


def test_render_series():
    text = render_series(
        [20, 40], {"mpjpe": [18.0, 19.0]}, x_label="distance",
        y_label="mm",
    )
    assert "distance" in text
    assert "18.0" in text


def test_render_series_validates_lengths():
    with pytest.raises(EvaluationError):
        render_series([1, 2], {"x": [1.0]}, "a", "b")


def test_render_cdf_summary(gt):
    pred = shifted(gt, 15.0)
    errors, fractions = error_cdf(pred, gt)
    text = render_cdf_summary(errors, fractions, probe_mm=(10, 20))
    assert "100.0" in text  # all errors <= 20mm
    assert "0.0" in text  # none <= 10mm
