"""Tests of the multi-process serving gateway (:mod:`repro.gateway`):
shared-memory ring semantics, the zero-copy ingest guarantee, pose
parity with the in-process server, sticky session affinity, frame
accounting under load, and SIGKILL crash recovery."""

import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.config import DspConfig, ModelConfig, RadarConfig
from repro.errors import (
    GatewayError,
    QueueFullError,
    RingLayoutError,
    UnknownSessionError,
)
from repro.gateway import (
    Gateway,
    GatewayConfig,
    LoadgenConfig,
    ShmRing,
    run_loadgen,
)
from repro.gateway.ring import (
    KIND_FRAME_CUBE,
    KIND_POSE,
    SLOT_HEADER_BYTES,
)
from repro.resilience import HealthState
from repro.serving import ServingConfig


@pytest.fixture(scope="module")
def configs():
    """Small-but-real stack: every frame does model work."""
    radar = RadarConfig(samples_per_chirp=32, chirp_loops=8)
    dsp = DspConfig(
        range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
        segment_frames=2,
    )
    model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
        lstm_hidden=16,
    )
    return radar, dsp, model


def _cube_frames(dsp, count, seed=0):
    rng = np.random.default_rng(seed)
    return np.abs(
        rng.normal(
            size=(
                count,
                dsp.doppler_bins,
                dsp.range_bins,
                dsp.angle_bins_total,
            )
        )
    ).astype(np.float32)


def _gateway_config(workers=1, **kwargs):
    kwargs.setdefault("ring_slots", 32)
    kwargs.setdefault(
        "serving",
        ServingConfig(
            max_batch_size=8, queue_capacity=32, policy="block"
        ),
    )
    kwargs.setdefault("seed", 7)
    return GatewayConfig(workers=workers, **kwargs)


def _feed_all(gateway, session_ids, frames):
    """Feed every frame to every session, pumping through backpressure."""
    results = []
    sent = 0
    for frame in frames:
        for sid in session_ids:
            for _ in range(500):
                try:
                    gateway.submit_cube(sid, frame)
                    sent += 1
                    break
                except QueueFullError:
                    results.extend(gateway.pump())
                    time.sleep(0.001)
            else:  # pragma: no cover - only on a wedged gateway
                pytest.fail("gateway refused a frame for 0.5s")
        results.extend(gateway.pump())
    return sent, results


# ----------------------------------------------------------------------
# ShmRing semantics
# ----------------------------------------------------------------------


def test_ring_roundtrip_and_wraparound():
    ring = ShmRing.create(slots=4, slot_bytes=SLOT_HEADER_BYTES + 1024)
    try:
        payloads = [
            np.arange(12, dtype=np.float32).reshape(3, 4) + i
            for i in range(11)  # > 2 full wraps of a 4-slot ring
        ]
        for i, payload in enumerate(payloads):
            assert ring.push(
                KIND_FRAME_CUBE, "sess", i, payload, flags=i % 3
            )
            message = ring.pop()
            assert message is not None
            assert message.kind == KIND_FRAME_CUBE
            assert message.session_id == "sess"
            assert message.frame_id == i
            assert message.flags == i % 3
            np.testing.assert_array_equal(message.payload, payload)
        assert ring.pop() is None
    finally:
        ring.close()
        ring.unlink()


def test_ring_full_rejects_then_recovers():
    ring = ShmRing.create(slots=2, slot_bytes=SLOT_HEADER_BYTES + 64)
    try:
        assert ring.push(KIND_POSE, "s", 0, np.zeros(3, np.float64))
        assert ring.push(KIND_POSE, "s", 1, np.zeros(3, np.float64))
        assert ring.full
        assert not ring.push(KIND_POSE, "s", 2, np.zeros(3, np.float64))
        assert ring.stats()["full_rejects"] == 1
        assert ring.pop().frame_id == 0
        assert ring.push(KIND_POSE, "s", 2, np.zeros(3, np.float64))
        assert [ring.pop().frame_id, ring.pop().frame_id] == [1, 2]
    finally:
        ring.close()
        ring.unlink()


def test_ring_cross_attach_sees_payload():
    ring = ShmRing.create(slots=4, slot_bytes=SLOT_HEADER_BYTES + 256)
    try:
        other = ShmRing.attach(ring.name)
        payload = np.linspace(0, 1, 32, dtype=np.float32)
        ring.push(KIND_FRAME_CUBE, "abc", 9, payload)
        message = other.pop()
        assert message.frame_id == 9
        np.testing.assert_array_equal(message.payload, payload)
        other.close()
    finally:
        ring.close()
        ring.unlink()


def test_ring_validates_layout_and_ids():
    with pytest.raises(RingLayoutError):
        ShmRing.create(slots=1, slot_bytes=SLOT_HEADER_BYTES + 8)
    with pytest.raises(RingLayoutError):
        ShmRing.create(slots=4, slot_bytes=SLOT_HEADER_BYTES)
    ring = ShmRing.create(slots=2, slot_bytes=SLOT_HEADER_BYTES + 64)
    try:
        with pytest.raises(RingLayoutError):
            ring.push(KIND_POSE, "x" * 33, 0)  # session id too wide
        with pytest.raises(RingLayoutError):
            ring.push(
                KIND_POSE, "s", 0, np.zeros(4, dtype=np.uint16)
            )  # unsupported payload dtype
        with pytest.raises(RingLayoutError):
            ring.push(
                KIND_POSE, "s", 0, np.zeros(1024, dtype=np.float64)
            )  # payload larger than the slot
    finally:
        ring.close()
        ring.unlink()


# ----------------------------------------------------------------------
# The zero-copy guarantee
# ----------------------------------------------------------------------


def test_ring_payload_lives_in_shared_memory():
    """peek() maps the payload in place: its data pointer must lie
    inside the shared segment, not in a private heap copy."""
    ring = ShmRing.create(slots=4, slot_bytes=SLOT_HEADER_BYTES + 1024)
    try:
        segment = np.frombuffer(ring._shm.buf, dtype=np.uint8)
        base = segment.__array_interface__["data"][0]
        payload = np.arange(64, dtype=np.float32)
        ring.push(KIND_FRAME_CUBE, "s", 0, payload)
        message = ring.peek()
        address = message.payload.__array_interface__["data"][0]
        assert base <= address < base + ring._shm.size
        np.testing.assert_array_equal(message.payload, payload)
        ring.commit()
        del message, segment
    finally:
        ring.close()
        ring.unlink()


def test_ring_ingest_never_pickles(monkeypatch):
    """Tripwire: pushing/popping array payloads must not touch any
    pickling entry point (payloads cross as one memcpy)."""
    from multiprocessing import reduction

    def _bomb(*args, **kwargs):  # pragma: no cover - should never run
        raise AssertionError("array payload hit a pickle path")

    monkeypatch.setattr(pickle, "dumps", _bomb)
    monkeypatch.setattr(pickle, "dump", _bomb)
    # The C-level pickle.Pickler type is immutable; the module-level
    # entry points plus multiprocessing's ForkingPickler (the route a
    # pickled IPC payload would actually take) cover the ingest path.
    monkeypatch.setattr(
        reduction.ForkingPickler, "dumps", classmethod(_bomb)
    )
    ring = ShmRing.create(slots=4, slot_bytes=SLOT_HEADER_BYTES + 4096)
    try:
        frames = _cube_frames(
            DspConfig(
                range_bins=4, doppler_bins=2, azimuth_bins=2,
                elevation_bins=2,
            ),
            3,
        )
        for i, frame in enumerate(frames):
            assert ring.push(KIND_FRAME_CUBE, "s", i, frame)
            message = ring.pop()
            np.testing.assert_array_equal(message.payload, frame)
    finally:
        ring.close()
        ring.unlink()


# ----------------------------------------------------------------------
# Gateway end-to-end
# ----------------------------------------------------------------------


def test_gateway_matches_in_process_server(configs):
    """One worker behind the rings produces bit-comparable poses to the
    same stack run in process (same seed => same weights)."""
    from repro.core.regressor import HandJointRegressor
    from repro.dsp.radar_cube import CubeBuilder

    radar, dsp, model = configs
    frames = _cube_frames(dsp, 6, seed=3)

    serving = ServingConfig(
        max_batch_size=8, queue_capacity=32, policy="block"
    )
    regressor = HandJointRegressor(dsp, model, seed=7)
    regressor.eval()
    from repro.serving import InferenceServer

    reference = InferenceServer(
        CubeBuilder(radar, dsp), regressor, serving
    )
    sid = reference.open_session("client-0")
    expected = []
    for frame in frames:
        reference.submit_cube(sid, frame)
        expected.extend(reference.step())
    expected.extend(reference.drain())
    assert expected  # sanity: the reference produced poses

    with Gateway(
        radar, dsp, model, _gateway_config(workers=1)
    ) as gateway:
        sid = gateway.open_session("client-0")
        sent, results = _feed_all(gateway, [sid], frames)
        results.extend(gateway.drain(timeout_s=30))

    assert sent == len(frames)
    got = {r.frame_index: r.joints for r in results}
    want = {r.frame_index: r.joints for r in expected}
    assert got.keys() == want.keys()
    for frame_index, joints in want.items():
        np.testing.assert_allclose(
            got[frame_index], joints, rtol=1e-6, atol=1e-7
        )


def test_gateway_sticky_affinity_and_balance(configs):
    radar, dsp, model = configs
    with Gateway(
        radar, dsp, model, _gateway_config(workers=2)
    ) as gateway:
        sids = [gateway.open_session() for _ in range(6)]
        assignment = gateway.session_to_worker()
        # Least-loaded admission balances 6 sessions 3/3 across 2 workers.
        per_worker = [0, 0]
        for sid in sids:
            per_worker[assignment[sid]] += 1
        assert per_worker == [3, 3]

        frames = _cube_frames(dsp, 4, seed=1)
        _feed_all(gateway, sids, frames)
        gateway.drain(timeout_s=30)
        # Affinity is sticky: the assignment never moved.
        assert gateway.session_to_worker() == assignment

        with pytest.raises(UnknownSessionError):
            gateway.submit_cube("never-opened", frames[0])


def test_gateway_requires_start(configs):
    radar, dsp, model = configs
    gateway = Gateway(radar, dsp, model, _gateway_config(workers=1))
    with pytest.raises(GatewayError):
        gateway.open_session()


def test_gateway_loadgen_accounts_every_frame(configs):
    """Open-loop load run: every submitted frame is acked and every
    expected pose arrives; nothing is silently lost."""
    radar, dsp, model = configs
    with Gateway(
        radar, dsp, model, _gateway_config(workers=2)
    ) as gateway:
        summary = run_loadgen(
            gateway,
            LoadgenConfig(sessions=8, frames_per_session=5, seed=0),
        )
    assert summary["frames_sent"] == 8 * 5
    assert summary["frames_acked"] == summary["frames_sent"]
    assert summary["lost_clean_frames"] == 0
    assert summary["dead_letters"] == 0
    # segment_frames=2 -> (frames - 1) poses per session.
    assert summary["poses"] == 8 * 4
    assert summary["sessions_completed"] == 8
    assert summary["latency_p99_ms"] >= summary["latency_p50_ms"] > 0


def test_gateway_merged_health_and_prometheus(configs):
    radar, dsp, model = configs
    with Gateway(
        radar, dsp, model, _gateway_config(workers=2)
    ) as gateway:
        sid = gateway.open_session()
        _feed_all(gateway, [sid], _cube_frames(dsp, 3, seed=2))
        gateway.drain(timeout_s=30)
        assert gateway.health() is HealthState.HEALTHY
        stats = gateway.stats()
        assert set(stats["workers"]) == {0, 1}
        assert all(
            entry["alive"] for entry in stats["workers"].values()
        )
        text = gateway.prometheus()
        assert "gateway_health" in text
        assert "gateway_worker_alive_w0" in text
        # Worker-side serving counters surface in the merged exposition.
        assert "workers_poses" in text


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------


def test_gateway_sigkill_recovery_accounts_all_frames(configs):
    """SIGKILL a worker mid-stream: the gateway restarts it, replays or
    dead-letters its in-flight frames, degrades and then recovers."""
    radar, dsp, model = configs
    config = _gateway_config(workers=2, heartbeat_timeout_s=2.0)
    with Gateway(radar, dsp, model, config) as gateway:
        sids = [gateway.open_session() for _ in range(4)]
        frames = _cube_frames(dsp, 8, seed=5)
        results = []
        sent = 0
        for frame in frames[:4]:
            for sid in sids:
                gateway.submit_cube(sid, frame)
                sent += 1
            results.extend(gateway.pump())

        victim = gateway._workers[0]
        first_generation = victim.generation
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.join(timeout=10)

        saw_degraded = False
        for frame in frames[4:]:
            for sid in sids:
                for _ in range(500):
                    try:
                        gateway.submit_cube(sid, frame)
                        sent += 1
                        break
                    except QueueFullError:
                        results.extend(gateway.pump())
                        time.sleep(0.001)
            results.extend(gateway.pump())
            saw_degraded = saw_degraded or (
                gateway.health() is not HealthState.HEALTHY
            )
        results.extend(gateway.drain(timeout_s=30))

        stats = gateway.stats()
        counters = stats["counters"]
        acked = int(counters["gateway.acks"])
        dead = int(stats["dead_letters"]["total"])
        # Frames acked as enqueued whose worker died before serving them
        # are counted in BOTH acks and dead letters; the crash counter
        # tracks exactly that overlap.
        crash_acked = int(counters.get("gateway.crash_dead_letters", 0))

        # The worker came back under a new generation...
        assert gateway._workers[0].generation > first_generation
        assert gateway._workers[0].alive()
        assert int(counters["gateway.worker_restarts"]) >= 1
        # ...the kill was visible on the health ladder, then healed...
        assert saw_degraded
        assert gateway.health() is HealthState.HEALTHY
        # ...and every clean frame was either acked or dead-lettered.
        assert sent == acked + dead - crash_acked
        # Sessions stayed pinned to the restarted worker index.
        assert set(gateway.session_to_worker().values()) <= {0, 1}
        # Poses kept flowing after the crash.
        assert len(results) > 0


def test_gateway_shutdown_releases_shared_memory(configs):
    radar, dsp, model = configs
    gateway = Gateway(radar, dsp, model, _gateway_config(workers=1))
    gateway.start()
    name = gateway._workers[0].request_ring.name
    pid = gateway._workers[0].process.pid
    gateway.shutdown()
    assert not os.path.exists(f"/dev/shm/{name}")
    # The worker process is gone too.
    with pytest.raises((ProcessLookupError, PermissionError)):
        os.kill(pid, 0)


def test_gateway_drain_with_frames_in_flight_accounts_all(configs):
    """The ``sent == acked + dead_lettered`` invariant must hold on the
    DRAIN path too: fill the rings without pumping, then drain with
    every frame still in flight and check the books balance."""
    radar, dsp, model = configs
    gateway = Gateway(radar, dsp, model, _gateway_config(workers=2))
    gateway.start()
    try:
        sessions = [gateway.open_session() for _ in range(2)]
        frames = _cube_frames(dsp, 6, seed=13)
        sent = 0
        # Stuff the rings WITHOUT pumping: everything stays in flight.
        for frame in frames:
            for sid in sessions:
                try:
                    gateway.submit_cube(sid, frame)
                    sent += 1
                except QueueFullError:
                    pass  # ring full: in-flight pressure achieved
        assert sent > 0
        assert gateway.outstanding() > 0

        results = gateway.drain(timeout_s=30.0)

        assert gateway.outstanding() == 0
        counters = gateway.stats()["counters"]
        acked = int(counters["gateway.acks"])
        dead = int(gateway.dead_letters.stats()["total"])
        assert sent == acked + dead
        assert dead == 0  # nothing malformed: no frame may be lost
        # Every frame past each session's window fill returned a pose.
        per_session = sent // len(sessions)
        assert len(results) == sent - len(sessions) * (
            dsp.segment_frames - 1
        )
        assert per_session > dsp.segment_frames - 1
    finally:
        gateway.shutdown()


def test_gateway_shutdown_with_frames_in_flight_is_clean(configs):
    """Shutdown with unpumped frames must terminate the workers and
    release shared memory without hanging -- the drain path is the
    graceful route; shutdown is the hard stop and may discard."""
    radar, dsp, model = configs
    gateway = Gateway(radar, dsp, model, _gateway_config(workers=1))
    gateway.start()
    sid = gateway.open_session()
    for frame in _cube_frames(dsp, 4, seed=17):
        try:
            gateway.submit_cube(sid, frame)
        except QueueFullError:
            break
    name = gateway._workers[0].request_ring.name
    pid = gateway._workers[0].process.pid
    start = time.monotonic()
    gateway.shutdown()
    assert time.monotonic() - start < 30.0
    assert not os.path.exists(f"/dev/shm/{name}")
    with pytest.raises((ProcessLookupError, PermissionError)):
        os.kill(pid, 0)


def test_ring_quantized_dtype_roundtrip():
    """float16 and int8 payloads survive the shared-memory ring."""
    ring = ShmRing.create(slots=4, slot_bytes=SLOT_HEADER_BYTES + 512)
    try:
        payloads = [
            (np.linspace(-2, 2, 24).astype(np.float16).reshape(4, 6)),
            (np.arange(-12, 12, dtype=np.int8).reshape(2, 12)),
        ]
        for i, payload in enumerate(payloads):
            assert ring.push(KIND_FRAME_CUBE, "q", i, payload)
            message = ring.pop()
            assert message.payload.dtype == payload.dtype
            np.testing.assert_array_equal(message.payload, payload)
    finally:
        ring.close()
        ring.unlink()


def test_gateway_workers_load_plan_artifact(configs, tmp_path):
    """Workers spawned with ``plan_path`` serve from the artifact (no
    per-worker trace/fold) and still match the in-process reference."""
    from repro.core.regressor import HandJointRegressor
    from repro.dsp.radar_cube import CubeBuilder
    from repro.nn.serialization import regressor_config_meta, save_plan
    from repro.serving import InferenceServer

    radar, dsp, model = configs
    frames = _cube_frames(dsp, 6, seed=3)
    serving = ServingConfig(
        max_batch_size=8, queue_capacity=32, policy="block"
    )

    # Export an artifact from the exact stack the workers will build
    # (same seed => same weights).
    exporter = HandJointRegressor(dsp, model, seed=7)
    exporter.eval()
    rng = np.random.default_rng(0)
    calib = rng.normal(
        size=(4, dsp.segment_frames, dsp.doppler_bins, dsp.range_bins,
              dsp.angle_bins_total)
    ).astype(np.float32)
    exporter.calibrate(calib)
    prefix = str(tmp_path / "worker-plan")
    save_plan(
        exporter.compiled(), prefix,
        config=regressor_config_meta(exporter, seed=7),
    )

    reference = InferenceServer(
        CubeBuilder(radar, dsp),
        exporter,
        serving,
    )
    sid = reference.open_session("client-0")
    expected = []
    for frame in frames:
        reference.submit_cube(sid, frame)
        expected.extend(reference.step())
    expected.extend(reference.drain())
    assert expected

    with Gateway(
        radar, dsp, model,
        _gateway_config(workers=1, plan_path=prefix),
    ) as gateway:
        sid = gateway.open_session("client-0")
        sent, results = _feed_all(gateway, [sid], frames)
        results.extend(gateway.drain(timeout_s=30))
        stats = gateway.stats()

    assert sent == len(frames)
    assert stats["workers"][0]["plan_artifact"] == prefix
    got = {r.frame_index: r.joints for r in results}
    want = {r.frame_index: r.joints for r in expected}
    assert got.keys() == want.keys()
    for frame_index, joints in want.items():
        np.testing.assert_allclose(
            got[frame_index], joints, rtol=1e-6, atol=1e-7
        )


def test_gateway_rejects_mismatched_plan_artifact(configs, tmp_path):
    """A worker given an artifact from a different model config dies at
    spawn rather than serving wrong poses."""
    import dataclasses

    from repro.core.regressor import HandJointRegressor
    from repro.nn.serialization import regressor_config_meta, save_plan

    radar, dsp, model = configs
    other_model = dataclasses.replace(model, lstm_hidden=32)
    exporter = HandJointRegressor(dsp, other_model, seed=7)
    exporter.eval()
    prefix = str(tmp_path / "mismatched-plan")
    save_plan(
        exporter.compiled(), prefix,
        config=regressor_config_meta(exporter, seed=7),
    )

    from repro.errors import WorkerCrashedError

    gateway = Gateway(
        radar, dsp, model,
        _gateway_config(workers=1, max_restarts=0, plan_path=prefix),
    )
    try:
        with pytest.raises(WorkerCrashedError):
            gateway.start()
            deadline = time.time() + 10.0
            while time.time() < deadline:
                # Polling notices the dead worker; with a zero restart
                # budget the crash surfaces as WorkerCrashedError.
                gateway.stats()
                time.sleep(0.05)
            pytest.fail("worker kept running with a mismatched plan")
    finally:
        gateway.shutdown()


# ----------------------------------------------------------------------
# Distributed tracing
# ----------------------------------------------------------------------


def test_ring_slot_header_carries_trace_context():
    """The v2 slot header roundtrips trace id / parent span / enqueue
    timestamp, and defaults to zeros when no context is supplied."""
    ring = ShmRing.create(slots=4, slot_bytes=SLOT_HEADER_BYTES + 256)
    try:
        payload = np.arange(12, dtype=np.float32).reshape(3, 4)
        enqueued = time.time()
        assert ring.push(
            KIND_FRAME_CUBE, "traced", 3, payload,
            trace_id=0xDEADBEEFCAFE, parent_span_id=0x1234_5678_9ABC,
            enqueue_ts=enqueued,
        )
        message = ring.pop()
        assert message.trace_id == 0xDEADBEEFCAFE
        assert message.parent_span_id == 0x1234_5678_9ABC
        assert message.enqueue_ts == pytest.approx(enqueued)
        np.testing.assert_array_equal(message.payload, payload)

        assert ring.push(KIND_FRAME_CUBE, "plain", 4, payload)
        message = ring.pop()
        assert message.trace_id == 0
        assert message.parent_span_id == 0
        assert message.enqueue_ts == 0.0
    finally:
        ring.close()
        ring.unlink()


def test_gateway_merged_trace_parents_worker_spans(configs, tmp_path):
    """One gateway run produces ONE merged trace: every worker-side
    ``worker.forward`` span is parented (via the context propagated in
    the ring header) to its dispatcher-side ``gateway.submit`` span,
    spans arrive from both worker processes, the stage-latency ledger
    fills in, and the Chrome export gets per-process lanes."""
    import json

    from repro.obs import trace as obs_trace

    obs_trace.clear()
    radar, dsp, model = configs
    config = _gateway_config(workers=2, profile_hz=50.0)
    dispatcher_pid = os.getpid()
    with Gateway(radar, dsp, model, config) as gateway:
        sids = [gateway.open_session() for _ in range(4)]
        frames = _cube_frames(dsp, 6, seed=11)
        sent, results = _feed_all(gateway, sids, frames)
        results.extend(gateway.drain(timeout_s=30))
        stats = gateway.stats()  # pulls worker spans + stage ledger
        stages = stats["stage_latency"]
    # Shutdown absorbed each worker's final "bye" payload, so the
    # records below include every span the pool ever finished.
    records = gateway.trace_records()
    assert sent == len(frames) * len(sids)
    assert results

    submits = {}
    for record in records:
        if record["name"] == "gateway.submit":
            key = (
                record["fields"]["session"],
                record["fields"]["frame_id"],
            )
            submits[key] = record
            assert record["pid"] == dispatcher_pid
    assert len(submits) == sent

    # One forward span per served pose (the first frame of a session is
    # absorbed into the segment window and produces no pose).
    forwards = [r for r in records if r["name"] == "worker.forward"]
    assert len(forwards) == len(results)
    forward_pids = set()
    for record in forwards:
        forward_pids.add(record["pid"])
        parent = submits[
            (record["fields"]["session"], record["fields"]["frame_id"])
        ]
        # The propagated context stitches the cross-process edge.
        assert record["parent_id"] == parent["span_id"]
        assert record["trace_id"] == parent["trace_id"]
        assert record["correlation_id"] == (
            f"{record['fields']['session']}#{record['fields']['frame_id']}"
        )
    assert len(forward_pids) == 2, "expected spans from both workers"
    assert dispatcher_pid not in forward_pids

    # Per-frame stage ledger: every acceptance stage has samples.
    for stage in ("submit", "ring_wait", "batch_wait", "forward", "e2e"):
        assert stages[stage]["count"] > 0, stage
        assert stages[stage]["mean"] >= 0.0

    # Merged Chrome export: one file, per-process lanes.
    path = str(tmp_path / "merged_trace.json")
    gateway.export_chrome(path)
    with open(path) as fh:
        events = json.load(fh)["traceEvents"]
    lanes = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert {"dispatcher", "worker-0", "worker-1"} <= lanes
    span_events = [e for e in events if e["ph"] == "X"]
    assert {e["pid"] for e in span_events} >= forward_pids | {dispatcher_pid}

    # Workers profiled themselves and shipped the samples home.
    profile = gateway.merged_profile()
    assert profile["samples"] > 0
    assert any(
        stack.startswith(("worker-0;", "worker-1;"))
        for stack in profile["counts"]
    )


def test_gateway_crash_keeps_correlation_and_trace_parentage(configs):
    """SIGKILL a worker mid-stream: crash dead letters carry the frame's
    correlation id, and frames replayed into the restarted worker keep
    their ORIGINAL submit-span parentage in the merged trace."""
    from repro.obs import trace as obs_trace

    obs_trace.clear()
    radar, dsp, model = configs
    config = _gateway_config(workers=2, heartbeat_timeout_s=2.0)
    with Gateway(radar, dsp, model, config) as gateway:
        sids = [gateway.open_session() for _ in range(4)]
        frames = _cube_frames(dsp, 8, seed=13)
        results = []
        sent = 0
        for frame in frames[:4]:
            for sid in sids:
                gateway.submit_cube(sid, frame)
                sent += 1

        victim = gateway._workers[0]
        victim_pid = victim.process.pid
        os.kill(victim_pid, signal.SIGKILL)
        victim.process.join(timeout=10)

        more_sent, more = _feed_all(gateway, sids, frames[4:])
        sent += more_sent
        results.extend(more)
        results.extend(gateway.drain(timeout_s=30))
        stats = gateway.stats()
        replayed = int(
            stats["counters"].get("gateway.frames_replayed", 0)
        )
    records = gateway.trace_records()

    # Correlation ids survive the crash into the dead-letter log.
    crash_letters = [
        letter
        for letter in gateway.dead_letters.tail()
        if letter["stage"] == "worker-crash"
    ]
    for letter in crash_letters:
        assert letter["corr_id"] == (
            f"{letter['session_id']}#{letter['frame_index']}"
        )
    # The kill happened mid-stream: SOMETHING was in flight, so the
    # crash either dead-lettered or replayed frames (usually both).
    assert crash_letters or replayed > 0

    # Every served frame -- including the replayed ones, which ran in
    # the restarted worker's NEW process -- parents back to the submit
    # span that first forwarded it.
    submits = {
        (r["fields"]["session"], r["fields"]["frame_id"]): r
        for r in records
        if r["name"] == "gateway.submit"
    }
    forwards = [r for r in records if r["name"] == "worker.forward"]
    assert forwards
    post_crash_pids = set()
    for record in forwards:
        parent = submits[
            (record["fields"]["session"], record["fields"]["frame_id"])
        ]
        assert record["parent_id"] == parent["span_id"]
        assert record["trace_id"] == parent["trace_id"]
        post_crash_pids.add(record["pid"])
    # The replacement worker (new pid) contributed parented spans too.
    assert any(pid != victim_pid for pid in post_crash_pids)
    # Accounting identity from the recovery contract still holds.
    counters = stats["counters"]
    acked = int(counters["gateway.acks"])
    dead = int(stats["dead_letters"]["total"])
    crash_acked = int(counters.get("gateway.crash_dead_letters", 0))
    assert sent == acked + dead - crash_acked
