"""Tests of configuration validation and derived radar quantities."""

import numpy as np
import pytest

from repro.config import (
    SPEED_OF_LIGHT,
    CampaignConfig,
    DspConfig,
    ModelConfig,
    RadarConfig,
    SystemConfig,
    TrainConfig,
)
from repro.errors import ConfigError


def test_default_radar_matches_iwr1443_setup():
    config = RadarConfig()
    assert config.start_frequency_hz == 77e9
    assert config.bandwidth_hz == 4e9  # 77-81 GHz
    assert config.chirp_duration_s == 80e-6
    assert config.samples_per_chirp == 64
    assert config.num_tx == 3
    assert config.num_rx == 4
    assert config.num_virtual_antennas == 12


def test_radar_derived_quantities():
    config = RadarConfig()
    assert config.range_resolution_m == pytest.approx(
        SPEED_OF_LIGHT / (2 * 4e9)
    )
    assert config.wavelength_m == pytest.approx(
        SPEED_OF_LIGHT / 79e9, rel=1e-6
    )
    assert config.sample_rate_hz == pytest.approx(64 / 80e-6)
    assert config.chirp_repetition_s == pytest.approx(3 * 80e-6)
    assert config.max_velocity_mps > 0
    assert config.velocity_resolution_mps < config.max_velocity_mps


def test_radar_validation():
    with pytest.raises(ConfigError):
        RadarConfig(bandwidth_hz=0)
    with pytest.raises(ConfigError):
        RadarConfig(samples_per_chirp=2)
    with pytest.raises(ConfigError):
        RadarConfig(chirp_loops=1)
    with pytest.raises(ConfigError):
        RadarConfig(num_rx=1)
    with pytest.raises(ConfigError):
        RadarConfig(noise_std=-0.1)


def test_dsp_defaults_follow_paper():
    config = DspConfig()
    assert config.butterworth_order == 8
    assert config.zoom_factor == 2
    assert config.angle_span_deg == 30.0
    assert config.angle_bins_total == (
        config.azimuth_bins + config.elevation_bins
    )
    assert config.angle_span_rad == pytest.approx(np.radians(30.0))


def test_dsp_validation():
    with pytest.raises(ConfigError):
        DspConfig(hand_band_m=(0.5, 0.2))
    with pytest.raises(ConfigError):
        DspConfig(butterworth_order=0)
    with pytest.raises(ConfigError):
        DspConfig(range_bins=1)
    with pytest.raises(ConfigError):
        DspConfig(zoom_factor=0)
    with pytest.raises(ConfigError):
        DspConfig(segment_frames=0)
    with pytest.raises(ConfigError):
        DspConfig(angle_span_deg=120.0)


def test_model_validation():
    with pytest.raises(ConfigError):
        ModelConfig(num_joints=20)
    with pytest.raises(ConfigError):
        ModelConfig(base_channels=0)
    with pytest.raises(ConfigError):
        ModelConfig(dropout=1.0)


def test_train_defaults_follow_paper():
    config = TrainConfig()
    assert config.learning_rate == 1e-3
    assert config.batch_size == 16
    assert config.collinear_margin == 0.01  # phi in Eq. 9
    assert config.collinear_cosine == 0.99  # t in Sec. IV-B


def test_train_validation():
    with pytest.raises(ConfigError):
        TrainConfig(learning_rate=0)
    with pytest.raises(ConfigError):
        TrainConfig(beta_3d=-1)
    with pytest.raises(ConfigError):
        TrainConfig(collinear_cosine=1.5)


def test_campaign_defaults_follow_paper():
    config = CampaignConfig()
    assert config.num_users == 10
    assert config.distance_range_m == (0.20, 0.40)
    assert set(config.environments) == {
        "classroom", "corridor", "playground",
    }


def test_campaign_validation():
    with pytest.raises(ConfigError):
        CampaignConfig(num_users=0)
    with pytest.raises(ConfigError):
        CampaignConfig(distance_range_m=(0.4, 0.2))
    with pytest.raises(ConfigError):
        CampaignConfig(environments=())


def test_system_config_bundles_defaults():
    system = SystemConfig()
    assert system.radar.num_tx == 3
    assert system.dsp.segment_frames >= 1
    assert system.model.num_joints == 21
