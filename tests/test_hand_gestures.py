"""Tests of the gesture library."""

import numpy as np
import pytest

from repro.errors import KinematicsError
from repro.hand.gestures import (
    COUNTING_GESTURES,
    GESTURE_LIBRARY,
    INTERACTION_GESTURES,
    blend_gestures,
    gesture_pose,
    list_gestures,
)
from repro.hand.joints import FINGER_CHAINS
from repro.hand.kinematics import HandPose, forward_kinematics
from repro.hand.shape import HandShape


def test_library_is_non_trivial():
    assert len(GESTURE_LIBRARY) >= 12
    assert set(list_gestures()) == set(GESTURE_LIBRARY)


def test_counting_and_interaction_partition():
    assert set(COUNTING_GESTURES) | set(INTERACTION_GESTURES) == set(
        GESTURE_LIBRARY
    )
    assert not set(COUNTING_GESTURES) & set(INTERACTION_GESTURES)
    assert len(COUNTING_GESTURES) == 6  # zero..five


def test_all_gestures_produce_valid_poses():
    for name in list_gestures():
        pose = gesture_pose(name)
        assert isinstance(pose, HandPose)


def test_gesture_pose_rejects_unknown():
    with pytest.raises(KinematicsError):
        gesture_pose("live_long_and_prosper")


def test_fist_curls_all_fingers():
    shape = HandShape()
    open_joints = forward_kinematics(
        shape, gesture_pose("open_palm", wrist_position=np.zeros(3),
                            orientation=np.eye(3))
    )
    fist_joints = forward_kinematics(
        shape, gesture_pose("fist", wrist_position=np.zeros(3),
                            orientation=np.eye(3))
    )
    for finger in ("index", "middle", "ring", "pinky"):
        tip = FINGER_CHAINS[finger][3]
        root = FINGER_CHAINS[finger][0]
        open_span = np.linalg.norm(open_joints[tip] - open_joints[root])
        fist_span = np.linalg.norm(fist_joints[tip] - fist_joints[root])
        assert fist_span < 0.6 * open_span


def test_count_one_extends_only_index():
    angles = GESTURE_LIBRARY["count_one"]
    # Index (row 1) straight; middle/ring/pinky curled.
    assert np.allclose(angles[1], 0.0)
    for row in (2, 3, 4):
        assert angles[row][0] > 1.0


def test_blend_endpoints_match_gestures():
    a = blend_gestures("fist", "open_palm", 0.0)
    b = blend_gestures("fist", "open_palm", 1.0)
    assert np.allclose(a, GESTURE_LIBRARY["fist"])
    assert np.allclose(b, GESTURE_LIBRARY["open_palm"])


def test_blend_midpoint_is_average():
    mid = blend_gestures("fist", "open_palm", 0.5)
    expected = 0.5 * (
        GESTURE_LIBRARY["fist"] + GESTURE_LIBRARY["open_palm"]
    )
    assert np.allclose(mid, expected)


def test_blend_validates_inputs():
    with pytest.raises(KinematicsError):
        blend_gestures("fist", "open_palm", 1.5)
    with pytest.raises(KinematicsError):
        blend_gestures("fist", "nope", 0.5)
