"""Tests of the model summary utilities."""

import numpy as np

from repro.nn.layers import Linear, Sequential
from repro.nn.summary import (
    count_parameters,
    parameter_breakdown,
    summarize_module,
)


def make_net():
    return Sequential(Linear(4, 8), Linear(8, 2))


def test_count_parameters():
    net = make_net()
    # 4*8 + 8 + 8*2 + 2
    assert count_parameters(net) == 32 + 8 + 16 + 2


def test_parameter_breakdown_names():
    names = dict(parameter_breakdown(make_net()))
    assert names["0.weight"] == 32
    assert names["1.bias"] == 2


def test_summary_renders():
    text = summarize_module(make_net())
    assert "58" in text  # total scalars
    assert "0.weight" in text
    assert "%" in text


def test_summary_truncates_long_models():
    net = Sequential(*[Linear(3, 3) for _ in range(10)])
    text = summarize_module(net, top=4)
    assert "more tensors" in text


def test_summary_of_regressor_counts_everything():
    from repro.config import DspConfig, ModelConfig
    from repro.core.regressor import HandJointRegressor

    reg = HandJointRegressor(
        DspConfig(range_bins=16, doppler_bins=4, azimuth_bins=8,
                  elevation_bins=8, segment_frames=2),
        ModelConfig(base_channels=4, hourglass_depth=1, num_blocks=1,
                    feature_dim=16, lstm_hidden=16),
    )
    total = count_parameters(reg)
    assert total == sum(p.data.size for p in reg.parameters())
    assert total > 1000
