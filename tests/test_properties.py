"""Property-based tests (hypothesis) of core invariants: autograd
linearity, rotation round-trips, kinematic rigidity, LBS consistency,
DSP energy relationships and metric bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.eval.metrics import auc, mpjpe, pck, pck_curve
from repro.hand.joints import FINGER_CHAINS, FINGERS
from repro.hand.kinematics import (
    HandPose,
    forward_kinematics,
    rotation_about_axis,
)
from repro.hand.shape import HandShape
from repro.mano.rotations import (
    axis_angle_to_matrix,
    axis_angle_to_quaternion,
    matrix_to_axis_angle,
    quaternion_to_matrix,
)
from repro.nn.tensor import Tensor


finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False,
    allow_infinity=False, width=32,
)


def small_arrays(shape):
    return arrays(np.float64, shape, elements=finite_floats)


# ----------------------------------------------------------------------
# Autograd invariants
# ----------------------------------------------------------------------
@given(small_arrays((3, 4)), small_arrays((3, 4)))
@settings(max_examples=30, deadline=None)
def test_addition_gradient_is_linear(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta + tb).sum().backward()
    assert np.allclose(ta.grad, 1.0)
    assert np.allclose(tb.grad, 1.0)


@given(small_arrays((4,)), st.floats(min_value=-3, max_value=3,
                                     allow_nan=False))
@settings(max_examples=30, deadline=None)
def test_scalar_mul_gradient(a, c):
    t = Tensor(a, requires_grad=True)
    (t * c).sum().backward()
    assert np.allclose(t.grad, c, atol=1e-6)


@given(small_arrays((2, 5)))
@settings(max_examples=30, deadline=None)
def test_sum_then_mean_consistency(a):
    t = Tensor(a)
    assert float(t.mean().data) == pytest.approx(
        float(t.sum().data) / a.size, rel=1e-5, abs=1e-6
    )


@given(small_arrays((3, 3)))
@settings(max_examples=30, deadline=None)
def test_relu_output_non_negative_grad_masked(a):
    t = Tensor(a, requires_grad=True)
    out = t.relu()
    assert np.all(out.data >= 0)
    out.sum().backward()
    assert np.all((t.grad == 0) | (t.grad == 1))
    assert np.all(t.grad[a > 0] == 1)


# ----------------------------------------------------------------------
# Rotation invariants
# ----------------------------------------------------------------------
unit_axis = arrays(
    np.float64, (3,),
    elements=st.floats(min_value=-1, max_value=1, allow_nan=False),
).filter(lambda v: np.linalg.norm(v) > 1e-3)


@given(unit_axis, st.floats(min_value=0.01, max_value=3.0))
@settings(max_examples=40, deadline=None)
def test_rotation_preserves_norm(axis, angle):
    rot = rotation_about_axis(axis, angle)
    vec = np.array([1.0, 2.0, 3.0])
    assert np.linalg.norm(rot @ vec) == pytest.approx(
        np.linalg.norm(vec), rel=1e-9
    )


@given(unit_axis, st.floats(min_value=0.01, max_value=3.0))
@settings(max_examples=40, deadline=None)
def test_axis_angle_round_trip_property(axis, angle):
    aa = axis / np.linalg.norm(axis) * angle
    recovered = matrix_to_axis_angle(axis_angle_to_matrix(aa))
    assert np.allclose(recovered, aa, atol=1e-7)


@given(unit_axis, st.floats(min_value=0.01, max_value=3.0))
@settings(max_examples=40, deadline=None)
def test_quaternion_matrix_equivalence_property(axis, angle):
    aa = axis / np.linalg.norm(axis) * angle
    assert np.allclose(
        quaternion_to_matrix(axis_angle_to_quaternion(aa)),
        axis_angle_to_matrix(aa),
        atol=1e-9,
    )


# ----------------------------------------------------------------------
# Kinematics invariants
# ----------------------------------------------------------------------
angle_rows = arrays(
    np.float64, (5, 4),
    elements=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
)


@given(angle_rows)
@settings(max_examples=25, deadline=None)
def test_fk_bone_lengths_invariant(angles):
    angles = angles.copy()
    angles[:, 1] -= 0.45  # centre abduction in its valid range
    shape = HandShape()
    joints = forward_kinematics(shape, HandPose(finger_angles=angles))
    for finger in FINGERS:
        chain = FINGER_CHAINS[finger]
        for seg in range(3):
            measured = np.linalg.norm(
                joints[chain[seg + 1]] - joints[chain[seg]]
            )
            assert measured == pytest.approx(
                shape.phalange_lengths[finger][seg], rel=1e-8
            )


@given(angle_rows)
@settings(max_examples=25, deadline=None)
def test_fk_translation_equivariance(angles):
    angles = angles.copy()
    angles[:, 1] -= 0.45
    shape = HandShape()
    offset = np.array([0.1, -0.2, 0.3])
    base = forward_kinematics(
        shape, HandPose(finger_angles=angles, wrist_position=np.zeros(3))
    )
    moved = forward_kinematics(
        shape, HandPose(finger_angles=angles, wrist_position=offset)
    )
    assert np.allclose(moved, base + offset, atol=1e-12)


@given(angle_rows)
@settings(max_examples=15, deadline=None)
def test_mano_fk_matches_hand_fk_property(angles):
    from repro.mano.model import ManoHandModel, pose_to_theta

    angles = angles.copy()
    angles[:, 1] -= 0.45
    pose = HandPose(
        finger_angles=angles, wrist_position=np.zeros(3),
        orientation=np.eye(3),
    )
    model = _cached_model()
    theta = pose_to_theta(pose)
    assert np.allclose(
        model(theta=theta).joints,
        forward_kinematics(HandShape(), pose),
        atol=1e-8,
    )


_MODEL_CACHE = []


def _cached_model():
    if not _MODEL_CACHE:
        from repro.mano.model import ManoHandModel

        _MODEL_CACHE.append(ManoHandModel())
    return _MODEL_CACHE[0]


# ----------------------------------------------------------------------
# Metric invariants
# ----------------------------------------------------------------------
joints_arrays = arrays(
    np.float64, (4, 21, 3),
    elements=st.floats(min_value=-0.5, max_value=0.5, allow_nan=False),
)


@given(joints_arrays, joints_arrays)
@settings(max_examples=25, deadline=None)
def test_mpjpe_symmetry_and_nonnegativity(a, b):
    assert mpjpe(a, b) >= 0
    assert mpjpe(a, b) == pytest.approx(mpjpe(b, a))
    assert mpjpe(a, a) == 0


@given(joints_arrays, joints_arrays)
@settings(max_examples=25, deadline=None)
def test_pck_bounds_and_monotonicity(a, b):
    p20 = pck(a, b, threshold_mm=20.0)
    p40 = pck(a, b, threshold_mm=40.0)
    assert 0.0 <= p20 <= p40 <= 100.0


@given(joints_arrays, joints_arrays)
@settings(max_examples=20, deadline=None)
def test_auc_bounded(a, b):
    thresholds, curve = pck_curve(a, b)
    assert 0.0 <= auc(thresholds, curve) <= 1.0


@given(joints_arrays)
@settings(max_examples=20, deadline=None)
def test_mpjpe_triangle_with_offset(a):
    offset = np.array([0.02, 0.0, 0.0])
    assert mpjpe(a + offset, a) == pytest.approx(20.0, rel=1e-6)
