"""Portable compiled-plan artifacts (save_plan / load_plan / verify_plan).

The artifact must round-trip the full execution state -- op list,
folded weights, activation ranges, static memory plans -- into a fresh
process with no module tree, reject tampered or mismatched files, and
pass the standalone eager-parity verification.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.regressor import HandJointRegressor
from repro.errors import SerializationError
from repro.nn.serialization import (
    attach_plan,
    load_plan,
    plan_matches_config,
    regressor_config_meta,
    save_plan,
    verify_plan,
)
from repro.obs import metrics as obs_metrics


@pytest.fixture
def regressor(small_dsp, small_model):
    return HandJointRegressor(small_dsp, small_model, seed=3)


def _segments(rng, dsp, batch=4):
    return rng.normal(
        size=(
            batch, dsp.segment_frames, dsp.doppler_bins,
            dsp.range_bins, dsp.angle_bins_total,
        )
    ).astype(np.float32)


def _export(regressor, rng, dsp, prefix, seed=3):
    """Calibrate + warm the plan and export it with embedded config."""
    x = _segments(rng, dsp)
    regressor.calibrate(x)
    for precision in ("float32", "float16", "int8"):
        regressor.predict(x, precision=precision)
    return save_plan(
        regressor.compiled(), prefix,
        config=regressor_config_meta(regressor, seed=seed),
    ), x


def test_export_load_parity(regressor, small_dsp, tmp_path, rng):
    (json_path, npz_path), x = _export(
        regressor, rng, small_dsp, tmp_path / "plan"
    )
    assert os.path.exists(json_path) and os.path.exists(npz_path)
    original = regressor.compiled()
    loaded = load_plan(tmp_path / "plan")
    normalized = regressor.normalize_inputs(x)
    for precision in ("float32", "float16", "int8"):
        a = original.run(normalized, precision=precision)
        b = loaded.run(normalized, precision=precision)
        assert np.array_equal(a, b), precision
    # Activation ranges and memory plans came along.
    assert loaded.act_ranges == original.act_ranges
    assert loaded.stats()["memory_plans"] == (
        original.stats()["memory_plans"]
    )
    assert loaded.stats()["planned_bytes"] > 0


def test_attach_plan_serves_without_tracing(
    regressor, small_dsp, small_model, tmp_path, rng
):
    _, x = _export(regressor, rng, small_dsp, tmp_path / "plan")
    fresh = HandJointRegressor(small_dsp, small_model, seed=3)
    compiles = obs_metrics.counter("model.plan.compiles").value
    attach_plan(fresh, load_plan(tmp_path / "plan"))
    out = fresh.predict(x, precision="int8")  # no recalibration needed
    assert np.array_equal(
        out, regressor.predict(x, precision="int8")
    )
    # attach_plan + load_plan never traced or folded the module tree.
    assert obs_metrics.counter("model.plan.compiles").value == compiles


def test_artifact_load_counter_increments(
    regressor, small_dsp, tmp_path, rng
):
    _export(regressor, rng, small_dsp, tmp_path / "plan")
    loads = obs_metrics.counter("model.plan.artifact_loads").value
    load_plan(tmp_path / "plan")
    assert (
        obs_metrics.counter("model.plan.artifact_loads").value
        == loads + 1
    )


def test_verify_plan_passes(regressor, small_dsp, tmp_path, rng):
    _export(regressor, rng, small_dsp, tmp_path / "plan")
    report = verify_plan(tmp_path / "plan", batch=2)
    assert report["passed"] is True
    assert report["float32_ok"] is True
    assert report["float16_ok"] is True
    assert report["int8_ok"] is True


def test_verify_detects_divergence(
    regressor, small_dsp, tmp_path, rng
):
    # Lie about the seed in the embedded config: the eager reference
    # verify_plan rebuilds then has different weights than the plan.
    _export(regressor, rng, small_dsp, tmp_path / "plan", seed=7)
    report = verify_plan(tmp_path / "plan", batch=2)
    assert report["float32_ok"] is False
    assert report["passed"] is False


def test_tampered_npz_rejected(regressor, small_dsp, tmp_path, rng):
    (_, npz_path), _ = _export(
        regressor, rng, small_dsp, tmp_path / "plan"
    )
    with np.load(npz_path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    name = sorted(arrays)[0]
    arrays[name] = arrays[name] + np.float32(0.25)
    np.savez(npz_path, **arrays)
    with pytest.raises(SerializationError):
        load_plan(tmp_path / "plan")


def test_wrong_format_and_missing_artifact_rejected(
    regressor, small_dsp, tmp_path, rng
):
    with pytest.raises(SerializationError):
        load_plan(tmp_path / "nothing-here")
    (json_path, _), _ = _export(
        regressor, rng, small_dsp, tmp_path / "plan"
    )
    with open(json_path) as fh:
        meta = json.load(fh)
    meta["layout_version"] = 999
    with open(json_path, "w") as fh:
        json.dump(meta, fh)
    with pytest.raises(SerializationError):
        load_plan(tmp_path / "plan")


def test_plan_matches_config_guard(
    regressor, small_dsp, small_model, tmp_path, rng
):
    import dataclasses

    _export(regressor, rng, small_dsp, tmp_path / "plan")
    _, meta = load_plan(tmp_path / "plan", with_meta=True)
    assert plan_matches_config(meta, small_dsp, small_model)
    other = dataclasses.replace(small_model, lstm_hidden=32)
    assert not plan_matches_config(meta, small_dsp, other)


def test_cli_export_then_verify_in_fresh_process(tmp_path):
    """The acceptance path: export, then verify from a new process."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    prefix = str(tmp_path / "artifact")
    export = subprocess.run(
        [sys.executable, "-m", "repro.cli", "plan", "export", prefix,
         "--small", "--calibration-segments", "4", "--seed", "0"],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert export.returncode == 0, export.stderr
    assert os.path.exists(prefix + ".json")
    verify = subprocess.run(
        [sys.executable, "-m", "repro.cli", "plan", "verify", prefix,
         "--batch", "2"],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert verify.returncode == 0, verify.stdout + verify.stderr
    assert "plan verification passed" in verify.stdout
