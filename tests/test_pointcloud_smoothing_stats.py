"""Tests of point-cloud extraction, skeleton smoothing, significance
tests and dataset statistics."""

import numpy as np
import pytest

from repro.config import DspConfig, RadarConfig
from repro.core.smoothing import (
    JointKalmanFilter,
    exponential_smooth,
    jitter_metric,
)
from repro.data.dataset import HandPoseDataset, SegmentMeta
from repro.data.statistics import (
    composition,
    cube_statistics,
    label_statistics,
    summarize,
)
from repro.dsp.pointcloud import (
    PointCloud,
    extract_pointcloud,
    sequence_pointclouds,
)
from repro.dsp.radar_cube import CubeBuilder
from repro.errors import (
    DatasetError,
    EvaluationError,
    ReproError,
    SignalProcessingError,
)
from repro.eval.significance import (
    paired_bootstrap,
    paired_permutation_test,
)
from repro.radar.antenna import iwr1443_array
from repro.radar.chirp import synthesize_frame
from repro.radar.scene import Scatterers


# ----------------------------------------------------------------------
# Point cloud
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def hand_cube():
    radar = RadarConfig(noise_std=0.005)
    dsp = DspConfig()
    array = iwr1443_array(radar)
    scatterers = Scatterers(
        positions=np.array([[0.30, 0.03, 0.02], [0.36, -0.02, 0.05]]),
        velocities=np.zeros((2, 3)),
        amplitudes=np.array([1.0, 0.8]),
    )
    frames = np.stack(
        [synthesize_frame(radar, array, scatterers) for _ in range(2)]
    )
    return CubeBuilder(radar, dsp).build(frames)


def test_pointcloud_detects_targets(hand_cube):
    cloud = extract_pointcloud(hand_cube)
    assert len(cloud) >= 1
    ranges = np.linalg.norm(cloud.positions, axis=1)
    # Detections near the true scatterer ranges.
    assert np.any(np.abs(ranges - 0.30) < 0.06) or np.any(
        np.abs(ranges - 0.36) < 0.06
    )


def test_pointcloud_centroid_near_hand(hand_cube):
    cloud = extract_pointcloud(hand_cube)
    centroid = cloud.centroid()
    assert 0.2 < centroid[0] < 0.5


def test_pointcloud_top_k(hand_cube):
    cloud = extract_pointcloud(hand_cube, max_points=64)
    if len(cloud) > 1:
        top = cloud.top_k(1)
        assert len(top) == 1
        assert top.intensities[0] == cloud.intensities.max()
    with pytest.raises(SignalProcessingError):
        cloud.top_k(0)


def test_pointcloud_sequence(hand_cube):
    clouds = sequence_pointclouds(hand_cube)
    assert len(clouds) == hand_cube.num_frames


def test_pointcloud_frame_validation(hand_cube):
    with pytest.raises(SignalProcessingError):
        extract_pointcloud(hand_cube, frame=99)


def test_pointcloud_container_validation():
    with pytest.raises(SignalProcessingError):
        PointCloud(
            positions=np.zeros((2, 3)),
            velocities=np.zeros(1),
            intensities=np.zeros(2),
        )
    empty = PointCloud(
        positions=np.zeros((0, 3)),
        velocities=np.zeros(0),
        intensities=np.zeros(0),
    )
    with pytest.raises(SignalProcessingError):
        empty.centroid()


# ----------------------------------------------------------------------
# Smoothing
# ----------------------------------------------------------------------
def noisy_static_stream(n=30, noise=0.01, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.normal(0.3, 0.05, size=(21, 3))
    return base + rng.normal(0, noise, size=(n, 21, 3))


def test_kalman_reduces_jitter_on_static_hand():
    stream = noisy_static_stream()
    smoothed = JointKalmanFilter().smooth_sequence(stream)
    assert jitter_metric(smoothed) < 0.7 * jitter_metric(stream)


def test_kalman_tracks_moving_hand_without_large_lag():
    n = 40
    t = np.linspace(0, 1, n)
    base = np.zeros((n, 21, 3))
    base[:, :, 0] = 0.3 + 0.1 * t[:, None]  # steady 0.1 m/s drift
    smoothed = JointKalmanFilter().smooth_sequence(base)
    lag = np.abs(smoothed[-1] - base[-1]).max()
    assert lag < 0.01  # constant-velocity model converges to the motion


def test_kalman_first_output_is_observation():
    stream = noisy_static_stream(3)
    kf = JointKalmanFilter()
    first = kf.update(stream[0])
    assert np.allclose(first, stream[0])


def test_kalman_reset():
    kf = JointKalmanFilter()
    kf.update(np.zeros((21, 3)))
    kf.reset()
    out = kf.update(np.ones((21, 3)))
    assert np.allclose(out, 1.0)


def test_kalman_validation():
    with pytest.raises(ReproError):
        JointKalmanFilter(frame_period_s=0)
    kf = JointKalmanFilter()
    with pytest.raises(ReproError):
        kf.update(np.zeros((20, 3)))


def test_exponential_smooth_bounds_and_identity():
    stream = noisy_static_stream(10)
    assert np.allclose(exponential_smooth(stream, alpha=1.0), stream)
    smoothed = exponential_smooth(stream, alpha=0.3)
    assert jitter_metric(smoothed) < jitter_metric(stream)
    with pytest.raises(ReproError):
        exponential_smooth(stream, alpha=0.0)


def test_jitter_metric_validation():
    with pytest.raises(ReproError):
        jitter_metric(np.zeros((1, 21, 3)))


# ----------------------------------------------------------------------
# Significance
# ----------------------------------------------------------------------
@pytest.fixture
def comparison_setup():
    rng = np.random.default_rng(0)
    gt = rng.normal(0.3, 0.05, size=(60, 21, 3))
    good = gt + rng.normal(0, 0.005, size=gt.shape)
    bad = gt + rng.normal(0, 0.02, size=gt.shape)
    return good, bad, gt


def test_bootstrap_detects_clear_difference(comparison_setup):
    good, bad, gt = comparison_setup
    result = paired_bootstrap(bad, good, gt, num_resamples=500)
    assert result.difference_mm > 0
    assert result.significant
    assert result.p_value < 0.05


def test_bootstrap_no_difference_for_identical(comparison_setup):
    good, _, gt = comparison_setup
    result = paired_bootstrap(good, good, gt, num_resamples=300)
    assert result.difference_mm == pytest.approx(0.0, abs=1e-9)
    assert not result.significant


def test_bootstrap_validation(comparison_setup):
    good, bad, gt = comparison_setup
    with pytest.raises(EvaluationError):
        paired_bootstrap(good, bad, gt, num_resamples=10)
    with pytest.raises(EvaluationError):
        paired_bootstrap(good[:10], bad, gt)


def test_permutation_test(comparison_setup):
    good, bad, gt = comparison_setup
    diff, p = paired_permutation_test(bad, good, gt,
                                      num_permutations=500)
    assert diff > 0
    assert p < 0.05
    _, p_same = paired_permutation_test(good, good, gt,
                                        num_permutations=200)
    assert p_same > 0.5


# ----------------------------------------------------------------------
# Dataset statistics
# ----------------------------------------------------------------------
@pytest.fixture
def stats_dataset():
    rng = np.random.default_rng(1)
    n = 12
    labels = rng.normal(0.3, 0.03, size=(n, 21, 3)).astype(np.float32)
    true = labels + rng.normal(0, 0.003, size=labels.shape).astype(
        np.float32
    )
    segments = np.abs(rng.normal(size=(n, 2, 4, 8, 8))).astype(np.float32)
    meta = [
        SegmentMeta(
            user_id=1 + i % 2,
            environment=("lab", "corridor")[i % 2],
            gesture=("fist", "point", "grab")[i % 3],
        )
        for i in range(n)
    ]
    return HandPoseDataset(
        segments=segments, labels=labels, true_joints=true, meta=meta
    )


def test_composition_counts(stats_dataset):
    comp = composition(stats_dataset)
    assert comp["users"] == {"1": 6, "2": 6}
    assert comp["environments"] == {"lab": 6, "corridor": 6}
    assert sum(comp["gestures"].values()) == 12


def test_label_statistics(stats_dataset):
    stats = label_statistics(stats_dataset)
    assert 0.1 < stats["distance_mean_m"] < 1.0
    assert stats["label_noise_mean_mm"] > 0
    assert stats["label_noise_p95_mm"] >= stats["label_noise_mean_mm"]


def test_cube_statistics(stats_dataset):
    stats = cube_statistics(stats_dataset)
    assert stats["cube_max"] > 0
    assert 0 <= stats["occupancy_percent"] <= 100


def test_summarize_renders(stats_dataset):
    text = summarize(stats_dataset)
    assert "12 segments" in text
    assert "users:" in text
    assert "SNR" in text


def test_statistics_reject_empty():
    empty = HandPoseDataset(
        segments=np.zeros((0, 2, 4, 8, 8)),
        labels=np.zeros((0, 21, 3)),
        true_joints=np.zeros((0, 21, 3)),
        meta=[],
    )
    for fn in (composition, label_statistics, cube_statistics):
        with pytest.raises(DatasetError):
            fn(empty)
