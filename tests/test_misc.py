"""Small cross-cutting tests: error hierarchy, initialisers, public API."""

import numpy as np
import pytest

import repro
from repro.errors import (
    ConfigError,
    DatasetError,
    EvaluationError,
    GradientError,
    KinematicsError,
    MeshError,
    ModelError,
    RadarError,
    ReproError,
    SerializationError,
    SignalProcessingError,
)
from repro.nn.init import kaiming_uniform, xavier_uniform


def test_all_errors_derive_from_repro_error():
    for exc in (
        ConfigError, KinematicsError, MeshError, RadarError,
        SignalProcessingError, ModelError, DatasetError, EvaluationError,
    ):
        assert issubclass(exc, ReproError)
    assert issubclass(GradientError, ModelError)
    assert issubclass(SerializationError, ModelError)


def test_catching_base_error_covers_subsystems():
    with pytest.raises(ReproError):
        raise RadarError("radar broke")
    with pytest.raises(ReproError):
        raise GradientError("graph broke")


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_version_string():
    major, minor, patch = repro.__version__.split(".")
    assert int(major) >= 1


def test_kaiming_bounds_and_dtype():
    rng = np.random.default_rng(0)
    w = kaiming_uniform(rng, (64, 32), fan_in=32)
    bound = np.sqrt(6.0 / 32)
    assert w.dtype == np.float32
    assert w.min() >= -bound
    assert w.max() <= bound
    # Fills the range (not degenerate).
    assert w.std() > bound / 4


def test_xavier_bounds():
    rng = np.random.default_rng(0)
    w = xavier_uniform(rng, (20, 10), fan_in=10, fan_out=20)
    bound = np.sqrt(6.0 / 30)
    assert np.abs(w).max() <= bound


def test_initialisers_validate():
    rng = np.random.default_rng(0)
    with pytest.raises(ModelError):
        kaiming_uniform(rng, (2, 2), fan_in=0)
    with pytest.raises(ModelError):
        xavier_uniform(rng, (2, 2), fan_in=0, fan_out=2)


def test_initialisers_deterministic_per_seed():
    a = kaiming_uniform(np.random.default_rng(5), (4, 4), 4)
    b = kaiming_uniform(np.random.default_rng(5), (4, 4), 4)
    assert np.array_equal(a, b)
