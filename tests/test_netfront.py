"""Tests of the network front end (:mod:`repro.netfront`): wire
protocol encode/decode hardening, admission control (limits, auth
lockout, health ladder), live server round trips, the chaos-parity
drill (fuzzer + slow reader + mid-stream disconnect concurrent with
clean clients), graceful drain accounting, and the SIGTERM CLI path."""

import json
import os
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque

import numpy as np
import pytest

from repro.config import DspConfig, ModelConfig, RadarConfig
from repro.errors import (
    AdmissionRejectedError,
    AuthError,
    NetFrontError,
    ProtocolError,
)
from repro.gateway import Gateway, GatewayConfig
from repro.gateway.loadgen import make_frame_pool
from repro.netfront import (
    AdmissionConfig,
    AdmissionController,
    FrameDecoder,
    HEADER_BYTES,
    NetFrontClient,
    NetFrontConfig,
    ProtocolFuzzer,
    decode_all,
    encode_message,
    reason_name,
    start_in_thread,
)
from repro.netfront.protocol import (
    ERR_AUTH_FAILED,
    ERR_AUTH_LOCKOUT,
    ERR_DRAINING,
    ERR_MAX_CONNECTIONS,
    ERR_MAX_SESSIONS,
    ERR_OVERLOADED,
    MSG_FRAME_CUBE,
    MSG_GOODBYE,
    MSG_HELLO,
    MSG_OPEN,
    MSG_PING,
)
from repro.resilience import HealthState
from repro.serving import ServingConfig

TOKEN = "netfront-test-token"


@pytest.fixture(scope="module")
def configs():
    """Small-but-real stack: every frame does model work."""
    radar = RadarConfig(samples_per_chirp=32, chirp_loops=8)
    dsp = DspConfig(
        range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
        segment_frames=2,
    )
    model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
        lstm_hidden=16,
    )
    return radar, dsp, model


def _gateway(configs, workers=1, seed=7):
    radar, dsp, model = configs
    return Gateway(
        radar, dsp, model,
        GatewayConfig(
            workers=workers, ring_slots=32, seed=seed,
            serving=ServingConfig(
                max_batch_size=8, queue_capacity=32, policy="block"
            ),
        ),
    )


def _net_config(**kwargs):
    kwargs.setdefault("auth_token", TOKEN)
    kwargs.setdefault("idle_timeout_s", 60.0)
    return NetFrontConfig(**kwargs)


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------


def test_protocol_roundtrip_all_payload_kinds():
    cube = np.random.default_rng(0).normal(size=(4, 16, 16))
    cases = [
        (MSG_PING, "", 0, None),
        (MSG_HELLO, "", 0, b"raw-bytes-token"),
        (MSG_OPEN, "sess-1", 0, {"hint": "json", "n": 3}),
        (MSG_FRAME_CUBE, "sess-1", 42, cube.astype(np.float32)),
        (MSG_FRAME_CUBE, "sess-1", 43, cube.astype(np.float64)),
        (MSG_FRAME_CUBE, "s", 44,
         (cube * 100).astype(np.int32)),
    ]
    blob = b"".join(
        encode_message(t, session_id=s, frame_id=f, payload=p)
        for t, s, f, p in cases
    )
    messages = decode_all(blob)
    assert len(messages) == len(cases)
    for message, (t, s, f, p) in zip(messages, cases):
        assert message.msg_type == t
        assert message.session_id == s
        assert message.frame_id == f
        if p is None:
            assert message.payload == b""
            assert message.array is None
        elif isinstance(p, bytes):
            assert message.payload == p
        elif isinstance(p, dict):
            assert message.json() == p
        else:
            assert message.array is not None
            assert message.array.dtype == p.dtype
            np.testing.assert_array_equal(message.array, p)


def test_protocol_streaming_decode_handles_any_split():
    frames = [
        encode_message(MSG_PING),
        encode_message(MSG_FRAME_CUBE, session_id="s", frame_id=7,
                       payload=np.arange(24, dtype=np.float32)),
        encode_message(MSG_GOODBYE, payload={"bye": True}),
    ]
    blob = b"".join(frames)
    # Feed in pathological chunk sizes, including byte-at-a-time.
    for chunk in (1, 3, HEADER_BYTES - 1, HEADER_BYTES + 1, 1000):
        decoder = FrameDecoder()
        out = []
        for start in range(0, len(blob), chunk):
            out.extend(decoder.feed(blob[start:start + chunk]))
        assert [m.msg_type for m in out] == [
            MSG_PING, MSG_FRAME_CUBE, MSG_GOODBYE,
        ]
        assert decoder.pending_bytes() == b""
        assert out[1].frame_id == 7


def test_protocol_rejects_corruption():
    good = encode_message(
        MSG_FRAME_CUBE, session_id="s", frame_id=1,
        payload=np.ones(16, dtype=np.float32),
    )

    # CRC: flip one payload bit.
    flipped = bytearray(good)
    flipped[HEADER_BYTES + 5] ^= 0x10
    with pytest.raises(ProtocolError, match="crc"):
        FrameDecoder().feed(bytes(flipped))

    # Bad magic fails fast -- even before a full header arrives.
    with pytest.raises(ProtocolError, match="magic"):
        FrameDecoder().feed(b"HTTP")

    # Unknown version.
    versioned = bytearray(good)
    versioned[4] = 99
    with pytest.raises(ProtocolError, match="version"):
        FrameDecoder().feed(bytes(versioned))

    # Oversized declared payload is rejected from the header alone,
    # before any payload bytes are buffered.
    with pytest.raises(ProtocolError, match="payload"):
        decoder = FrameDecoder(max_payload=1024)
        oversize = bytearray(good)
        struct.pack_into("<I", oversize, HEADER_BYTES - 8, 1 << 30)
        decoder.feed(bytes(oversize[:HEADER_BYTES]))

    # Shape/payload arithmetic mismatch.
    arr = encode_message(
        MSG_FRAME_CUBE, session_id="s", frame_id=1,
        payload=np.ones((2, 3), dtype=np.float32),
    )
    # ndim lives right after the dtype byte; corrupt a shape dim.
    mangled = bytearray(arr)
    # shape dims are 4 little-endian u32 before payload_len
    struct.pack_into("<I", mangled, HEADER_BYTES - 8 - 16, 7)
    with pytest.raises(ProtocolError):
        FrameDecoder().feed(bytes(mangled))


def test_protocol_truncated_message_stays_pending():
    good = encode_message(MSG_HELLO, payload=b"tok")
    decoder = FrameDecoder()
    assert decoder.feed(good[:-1]) == []
    assert len(decoder.pending_bytes()) == len(good) - 1
    out = decoder.feed(good[-1:])
    assert len(out) == 1
    assert out[0].payload == b"tok"


def test_fuzzer_is_deterministic():
    template = encode_message(
        MSG_FRAME_CUBE, session_id="s", frame_id=0,
        payload=np.ones(32, dtype=np.float32),
    )
    runs = []
    for _ in range(2):
        fuzzer = ProtocolFuzzer(seed=1234)
        chunks = []
        for chunk in fuzzer.stream(template):
            chunks.append(chunk)
            if len(chunks) >= 50:
                break
        runs.append(chunks)
    assert runs[0] == runs[1]
    # And the corruption actually corrupts: a decoder fed the fuzz
    # stream must hit a protocol error quickly.
    decoder = FrameDecoder(max_payload=1 << 20)
    with pytest.raises(ProtocolError):
        for chunk in runs[0]:
            decoder.feed(chunk)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


def test_admission_connection_and_session_limits():
    ctrl = AdmissionController(
        AdmissionConfig(max_connections=2, max_sessions=1)
    )
    assert ctrl.admit_connection() is None
    assert ctrl.admit_connection() is None
    code, reason = ctrl.admit_connection()
    assert code == ERR_MAX_CONNECTIONS
    assert reason_name(code) == "max_connections"
    ctrl.release_connection()
    assert ctrl.admit_connection() is None

    assert ctrl.admit_session() is None
    code, _ = ctrl.admit_session()
    assert code == ERR_MAX_SESSIONS
    ctrl.release_session()
    assert ctrl.admit_session() is None
    stats = ctrl.stats()
    assert stats["connections_rejected"] == 1
    assert stats["sessions_rejected"] == 1


def test_admission_auth_lockout_window_uses_injected_clock():
    clock = {"now": 100.0}
    ctrl = AdmissionController(
        AdmissionConfig(
            auth_token=b"secret", auth_failure_budget=3,
            auth_lockout_window_s=10.0,
        ),
        clock=lambda: clock["now"],
    )
    assert ctrl.check_token(b"secret") is None
    for _ in range(3):
        code, _ = ctrl.check_token(b"wrong")
        assert code == ERR_AUTH_FAILED
    # Budget burned: connections are now refused outright.
    code, _ = ctrl.admit_connection()
    assert code == ERR_AUTH_LOCKOUT
    # ... until the sliding window drains.
    clock["now"] += 10.1
    assert ctrl.admit_connection() is None
    assert ctrl.stats()["auth_failures"] == 3
    assert ctrl.stats()["auth_lockouts"] >= 1


def test_admission_health_ladder():
    health = {"state": HealthState.HEALTHY}
    ctrl = AdmissionController(health_fn=lambda: health["state"])
    assert ctrl.admit_connection() is None
    assert ctrl.admit_session() is None

    # Degraded: existing connections keep streaming, new sessions shed.
    health["state"] = HealthState.DEGRADED
    assert ctrl.admit_connection() is None
    code, _ = ctrl.admit_session()
    assert code == ERR_OVERLOADED

    # Unhealthy: new connections shed too.
    health["state"] = HealthState.UNHEALTHY
    code, _ = ctrl.admit_connection()
    assert code == ERR_OVERLOADED


def test_admission_draining_rejects_everything():
    ctrl = AdmissionController()
    ctrl.draining = True
    assert ctrl.admit_connection()[0] == ERR_DRAINING
    assert ctrl.admit_session()[0] == ERR_DRAINING


# ----------------------------------------------------------------------
# Live server
# ----------------------------------------------------------------------


def _pose_map(client):
    return {
        (p.session_id, p.frame_id): p.joints for p in client.poses
    }


def test_server_roundtrip_and_frame_id_mapping(configs):
    radar, dsp, model = configs
    gateway = _gateway(configs)
    handle = start_in_thread(gateway, _net_config())
    try:
        pool = make_frame_pool(dsp, 5, seed=3)
        with NetFrontClient.connect(
            handle.host, handle.port, token=TOKEN
        ) as client:
            assert client.welcome["version"] == 1
            session = client.open_session()
            # Client-chosen sparse frame ids must come back verbatim.
            ids = [100, 205, 333, 404, 512]
            for fid, cube in zip(ids, pool):
                client.send_cube(session, cube, frame_id=fid)
            poses = client.poll_poses(expect=4, timeout_s=60.0)
            assert len(poses) == 4  # first frame fills the window
            returned = sorted(p.frame_id for p in poses)
            assert returned == ids[1:]
            for pose in poses:
                assert pose.session_id == session
                assert pose.joints.shape[-1] == 3
            assert client.ping() < 5.0
    finally:
        report = handle.stop()
        gateway.shutdown()
    assert report["lost_clean_frames"] == 0
    assert report["frames_acked"] == 5
    assert report["poses_sent"] == 4


def test_server_rejects_bad_token_and_locks_out(configs):
    gateway = _gateway(configs)
    handle = start_in_thread(
        gateway,
        _net_config(auth_failure_budget=2, auth_lockout_window_s=60.0),
    )
    try:
        with pytest.raises(AuthError):
            NetFrontClient.connect(
                handle.host, handle.port, token="wrong-token"
            )
        with pytest.raises(AuthError):
            NetFrontClient.connect(
                handle.host, handle.port, token="still-wrong"
            )
        # Budget exhausted: even a correct token is now refused at the
        # door, which is what caps brute-force throughput.
        with pytest.raises((AuthError, AdmissionRejectedError)):
            NetFrontClient.connect(
                handle.host, handle.port, token=TOKEN
            )
        counters = gateway.metrics.snapshot()["counters"]
        assert counters.get("netfront.auth_failures", 0) >= 2
    finally:
        handle.stop()
        gateway.shutdown()


def test_server_unauthenticated_data_is_rejected(configs):
    gateway = _gateway(configs)
    handle = start_in_thread(gateway, _net_config())
    try:
        sock = socket.create_connection(
            (handle.host, handle.port), timeout=10.0
        )
        try:
            # OPEN before HELLO: the server must answer with a typed
            # error and close, never open the session.
            sock.sendall(encode_message(MSG_OPEN))
            sock.settimeout(10.0)
            data = b""
            while True:
                try:
                    chunk = sock.recv(4096)
                except OSError:
                    break
                if not chunk:
                    break
                data += chunk
            messages = decode_all(data)
            assert messages, "expected a typed error before close"
            from repro.netfront.protocol import MSG_ERROR
            assert messages[-1].msg_type == MSG_ERROR
        finally:
            sock.close()
    finally:
        handle.stop()
        gateway.shutdown()


def test_server_max_connections_gate(configs):
    gateway = _gateway(configs)
    handle = start_in_thread(gateway, _net_config(max_connections=1))
    try:
        with NetFrontClient.connect(
            handle.host, handle.port, token=TOKEN
        ):
            with pytest.raises(AdmissionRejectedError) as info:
                NetFrontClient.connect(
                    handle.host, handle.port, token=TOKEN
                )
            assert info.value.code == ERR_MAX_CONNECTIONS
        # Slot released on close: the next connection is admitted.
        time.sleep(0.2)
        with NetFrontClient.connect(
            handle.host, handle.port, token=TOKEN
        ) as client:
            assert client.welcome
    finally:
        handle.stop()
        gateway.shutdown()


def test_server_health_ladder_sheds_sessions_then_connections(configs):
    health = {"state": HealthState.HEALTHY}
    gateway = _gateway(configs)
    handle = start_in_thread(
        gateway, _net_config(), health_fn=lambda: health["state"]
    )
    try:
        client = NetFrontClient.connect(
            handle.host, handle.port, token=TOKEN
        )
        assert client.open_session()

        health["state"] = HealthState.DEGRADED
        with pytest.raises(NetFrontError) as info:
            client.open_session()
        assert "overloaded" in str(info.value)
        client.close()

        health["state"] = HealthState.UNHEALTHY
        with pytest.raises(AdmissionRejectedError) as info:
            NetFrontClient.connect(
                handle.host, handle.port, token=TOKEN
            )
        assert info.value.code == ERR_OVERLOADED
    finally:
        handle.stop()
        gateway.shutdown()


def test_server_unknown_session_is_typed_error(configs):
    radar, dsp, model = configs
    gateway = _gateway(configs)
    handle = start_in_thread(gateway, _net_config())
    try:
        pool = make_frame_pool(dsp, 1, seed=0)
        with NetFrontClient.connect(
            handle.host, handle.port, token=TOKEN
        ) as client:
            client.send_cube("no-such-session", pool[0], frame_id=0)
            deadline = time.monotonic() + 10.0
            while not client.errors and time.monotonic() < deadline:
                client.drain_messages(duration_s=0.1)
            assert client.errors
            assert client.errors[-1]["code"] == "unknown_session"
    finally:
        handle.stop()
        gateway.shutdown()


def test_connection_outbound_queue_sheds_oldest():
    """Unit-level slow-consumer check: the bounded outbound queue drops
    the OLDEST pose and keeps counting; it never grows past capacity and
    never blocks the producer."""

    # Build a real _Connection without a socket by bypassing __init__.
    from repro.netfront.server import _Connection

    conn = _Connection.__new__(_Connection)
    conn.outbound = deque()
    conn.outbound_capacity = 3
    conn.poses_shed = 0

    class _Event:
        def set(self):
            pass

    conn.wakeup = _Event()
    for i in range(5):
        conn.enqueue_pose(b"pose-%d" % i)
    assert len(conn.outbound) == 3
    assert conn.poses_shed == 2
    assert list(conn.outbound) == [b"pose-2", b"pose-3", b"pose-4"]


# ----------------------------------------------------------------------
# Chaos parity: fuzzer + slow reader + mid-stream disconnect vs clean
# ----------------------------------------------------------------------


def _run_clean_clients(host, port, pool, n_clients, frames_each):
    """Stream frames from ``n_clients`` concurrent clean clients;
    return {client_index: {frame_id: joints}} and the error count."""
    results = [{} for _ in range(n_clients)]
    errors = [0] * n_clients

    def work(index):
        with NetFrontClient.connect(
            host, port, token=TOKEN, timeout_s=30.0
        ) as client:
            session = client.open_session()
            for fid in range(frames_each):
                client.send_cube(
                    session, pool[fid % len(pool)], frame_id=fid
                )
            client.poll_poses(
                expect=frames_each - 1, timeout_s=120.0
            )
            for pose in client.poses:
                results[index][pose.frame_id] = pose.joints
            errors[index] = len(client.errors)

    threads = [
        threading.Thread(target=work, args=(i,), daemon=True)
        for i in range(n_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180.0)
    assert not any(t.is_alive() for t in threads), "clean client hung"
    return results, sum(errors)


def _fault_injectors(host, port, dsp, stop):
    """Three concurrent abusers: a protocol fuzzer, a slow reader that
    never drains its poses, and a client that disconnects mid-stream."""

    def fuzzer_loop():
        template = encode_message(
            MSG_FRAME_CUBE, session_id="fuzz", frame_id=0,
            payload=make_frame_pool(dsp, 1, seed=99)[0],
        )
        fuzzer = ProtocolFuzzer(seed=4242)
        while not stop.is_set():
            try:
                sock = socket.create_connection((host, port), 5.0)
            except OSError:
                time.sleep(0.01)
                continue
            try:
                sock.sendall(
                    encode_message(MSG_HELLO, payload=TOKEN.encode())
                )
                for chunk in fuzzer.stream(template):
                    if stop.is_set():
                        break
                    sock.sendall(chunk)
                    time.sleep(0.001)
            except OSError:
                pass  # quarantined: expected
            finally:
                sock.close()

    def slow_reader_loop():
        pool = make_frame_pool(dsp, 4, seed=55)
        while not stop.is_set():
            try:
                client = NetFrontClient.connect(
                    host, port, token=TOKEN, timeout_s=10.0
                )
            except Exception:
                time.sleep(0.05)
                continue
            try:
                session = client.open_session()
                for fid in range(4):
                    client.send_cube(session, pool[fid], frame_id=fid)
                # Never read the poses back; just sit on the socket.
                time.sleep(0.3)
            except Exception:
                pass
            finally:
                client.close()

    def disconnector_loop():
        pool = make_frame_pool(dsp, 2, seed=66)
        while not stop.is_set():
            try:
                client = NetFrontClient.connect(
                    host, port, token=TOKEN, timeout_s=10.0
                )
                session = client.open_session()
                client.send_cube(session, pool[0], frame_id=0)
                client.send_cube(session, pool[1], frame_id=1)
                # Yank the socket with poses still in flight.
                client._sock.close()
            except Exception:
                pass
            time.sleep(0.02)

    return [
        threading.Thread(target=fuzzer_loop, daemon=True,
                         name="chaos-fuzzer"),
        threading.Thread(target=slow_reader_loop, daemon=True,
                         name="chaos-slow-reader"),
        threading.Thread(target=disconnector_loop, daemon=True,
                         name="chaos-disconnector"),
    ]


def test_chaos_parity_clean_clients_unaffected(configs):
    """THE acceptance drill: a seeded protocol fuzzer, a slow reader
    and a mid-stream disconnector all hammer the server while clean
    clients stream. Every clean frame must be served with poses
    identical (<= 1e-6) to a no-fault baseline, no worker restarts, and
    the fuzzer's garbage must land in the dead-letter log with
    connection context."""
    radar, dsp, model = configs
    n_clients, frames_each = 2, 5
    pool = make_frame_pool(dsp, frames_each, seed=11)

    # Baseline: clean clients only, fresh gateway (seed-pinned).
    gateway = _gateway(configs, seed=21)
    handle = start_in_thread(gateway, _net_config())
    try:
        baseline, base_errors = _run_clean_clients(
            handle.host, handle.port, pool, n_clients, frames_each
        )
    finally:
        handle.stop()
        gateway.shutdown()
    assert base_errors == 0
    assert all(len(r) == frames_each - 1 for r in baseline)

    # Faulted run: identical clean clients + three fault injectors.
    gateway = _gateway(configs, seed=21)
    handle = start_in_thread(gateway, _net_config())
    stop = threading.Event()
    injectors = _fault_injectors(handle.host, handle.port, dsp, stop)
    try:
        for t in injectors:
            t.start()
        time.sleep(0.2)  # let the chaos ramp before clean traffic
        faulted, fault_errors = _run_clean_clients(
            handle.host, handle.port, pool, n_clients, frames_each
        )
        stop.set()
        for t in injectors:
            t.join(timeout=30.0)
        stats = handle.stats()
        dead = gateway.dead_letters.tail()
    finally:
        stop.set()
        handle.stop()
        counters = gateway.metrics.snapshot()["counters"]
        gateway.shutdown()

    # 1. Clean clients got every pose, bit-comparable to baseline.
    assert fault_errors == 0
    for clean, chaos in zip(baseline, faulted):
        assert sorted(clean) == sorted(chaos)
        for fid, joints in clean.items():
            np.testing.assert_allclose(
                chaos[fid], joints, atol=1e-6,
                err_msg=f"pose drifted under chaos (frame {fid})",
            )

    # 2. The pool survived untouched.
    assert counters.get("gateway.worker_restarts", 0) == 0

    # 3. The fuzzer's garbage was quarantined with connection context.
    protocol_letters = [
        r for r in dead if r["stage"] == "netfront-protocol"
    ]
    assert protocol_letters, "fuzzer ran but nothing was dead-lettered"
    sample = protocol_letters[-1]
    assert re.match(r"conn\d+@", sample["session_id"])
    assert sample["payload_len"] > 0
    assert counters.get("netfront.protocol_errors", 0) >= len(
        protocol_letters
    )
    # Only the offending connections died; the accounting in stats
    # still balances for everything the gateway accepted.
    accounting = stats["netfront"]["accounting"]
    assert accounting["lost_clean_frames"] == 0


# ----------------------------------------------------------------------
# Drain
# ----------------------------------------------------------------------


def test_drain_reports_accounting_and_notifies_clients(configs):
    radar, dsp, model = configs
    gateway = _gateway(configs)
    handle = start_in_thread(gateway, _net_config())
    client = None
    try:
        pool = make_frame_pool(dsp, 4, seed=9)
        client = NetFrontClient.connect(
            handle.host, handle.port, token=TOKEN
        )
        session = client.open_session()
        for fid in range(4):
            client.send_cube(session, pool[fid], frame_id=fid)
        client.poll_poses(expect=3, timeout_s=60.0)

        report = handle.drain()
        assert report["frames_acked"] == 4
        assert report["poses_sent"] == 3
        assert report["lost_clean_frames"] == 0
        assert report["drain_timed_out"] is False

        # The client sees an orderly GOODBYE carrying the accounting.
        client.drain_messages(duration_s=5.0)
        assert client.server_draining
        assert client.goodbye["lost_clean_frames"] == 0

        # New connections are refused while draining.
        with pytest.raises(AdmissionRejectedError) as info:
            NetFrontClient.connect(
                handle.host, handle.port, token=TOKEN, timeout_s=5.0
            )
        assert info.value.code == ERR_DRAINING
    except AdmissionRejectedError:
        raise
    except OSError:
        pass  # listener already closed: equally correct refusal
    finally:
        if client is not None:
            client.close()
        handle.stop()
        gateway.shutdown()


def test_serve_cli_sigterm_drains_and_exits_zero():
    """`mmhand serve --listen` + SIGTERM: graceful drain, goodbye frame
    to connected clients, full accounting, exit code 0."""
    env = dict(
        os.environ,
        PYTHONPATH=os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + ([os.environ["PYTHONPATH"]]
               if os.environ.get("PYTHONPATH") else [])
        ),
        PYTHONUNBUFFERED="1",
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    try:
        port = None
        deadline = time.monotonic() + 120.0
        lines = []
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            lines.append(line)
            match = re.search(
                r"netfront listening on 127\.0\.0\.1:(\d+)", line
            )
            if match:
                port = int(match.group(1))
                break
        assert port, "server never reported its port:\n" + "".join(lines)

        pool = make_frame_pool(DspConfig(), 8, seed=0)
        with NetFrontClient.connect(
            "127.0.0.1", port, timeout_s=30.0
        ) as client:
            session = client.open_session()
            for fid in range(8):
                client.send_cube(session, pool[fid], frame_id=fid)
            # Default DspConfig has a 4-frame window: 8 frames -> 5.
            client.poll_poses(expect=5, timeout_s=120.0)

            proc.send_signal(signal.SIGTERM)
            client.drain_messages(duration_s=10.0)
            assert client.server_draining
            assert client.goodbye["reason"] == "SIGTERM"
            assert client.goodbye["lost_clean_frames"] == 0

        returncode = proc.wait(timeout=120.0)
        tail = proc.stdout.read()
        assert returncode == 0, (
            f"serve exited {returncode}:\n" + "".join(lines) + tail
        )
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30.0)
