"""Tests of the vectorized DSP hot path: plan caching, batched cube
building, batched radar synthesis, the fast dtype policy, the
cumulative-sum CFAR and the benchmark harness."""

import json

import numpy as np
import pytest

from repro.config import ConfigError, DspConfig, RadarConfig
from repro.dsp import (
    PLAN_CACHE,
    CfarConfig,
    PlanCache,
    butterworth_bandpass_sos,
    ca_cfar,
    ca_cfar_reference,
    get_window,
    zoom_kernel,
)
from repro.dsp.filters import hand_bandpass
from repro.dsp.plans import filtfilt_operator
from repro.dsp.radar_cube import CubeBuilder
from repro.errors import SignalProcessingError
from repro.radar import RadarSimulator, simulate_sequences
from repro.radar.chirp import synthesize_frame, synthesize_sequence
from repro.radar.antenna import iwr1443_array
from repro.radar.scene import Scatterers, Scene


@pytest.fixture
def small_raw(small_radar, rng):
    array = iwr1443_array(small_radar)
    shape = (
        6,
        array.num_virtual,
        small_radar.chirp_loops,
        small_radar.samples_per_chirp,
    )
    return rng.normal(size=shape) + 1j * rng.normal(size=shape)


def _scenes(rng, frames, scatterers=8):
    scenes = []
    for _ in range(frames):
        n = scatterers
        scenes.append(
            Scene(
                hand=Scatterers(
                    positions=rng.uniform(
                        [0.15, -0.1, -0.1], [0.4, 0.1, 0.1], size=(n, 3)
                    ),
                    velocities=rng.normal(0.0, 0.3, size=(n, 3)),
                    amplitudes=rng.uniform(0.5, 1.5, size=n),
                )
            )
        )
    return scenes


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
def test_plan_cache_counts_hits_and_misses():
    cache = PlanCache()
    built = []

    def build():
        built.append(1)
        return np.zeros(3)

    a = cache.get("window", ("hann", 8), build)
    b = cache.get("window", ("hann", 8), build)
    assert a is b
    assert len(built) == 1
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["by_kind"]["window"]["entries"] == 1


def test_plan_cache_disabled_rebuilds():
    cache = PlanCache()
    calls = []
    cache.get("k", 1, lambda: calls.append(1))
    with cache.disabled():
        cache.get("k", 1, lambda: calls.append(1))
        cache.get("k", 1, lambda: calls.append(1))
    cache.get("k", 1, lambda: calls.append(1))
    # one miss, two pass-through rebuilds, one hit
    assert len(calls) == 3


def test_plan_cache_evicts_lru():
    cache = PlanCache(maxsize=2)
    cache.get("k", 1, lambda: "a")
    cache.get("k", 2, lambda: "b")
    cache.get("k", 1, lambda: "a")  # touch 1 so 2 is the LRU entry
    cache.get("k", 3, lambda: "c")
    assert len(cache) == 2
    rebuilt = []
    cache.get("k", 2, lambda: rebuilt.append(1))
    assert rebuilt  # 2 was evicted


def test_windows_cached_and_read_only():
    w1 = get_window("hann", 33)
    w2 = get_window("hann", 33)
    assert w1 is w2
    assert not w1.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        w1[0] = 5.0
    # distinct dtypes are distinct plans
    w32 = get_window("hann", 33, dtype=np.float32)
    assert w32.dtype == np.float32
    assert w32 is not w1


def test_cached_sos_and_zoom_kernel_frozen():
    sos = butterworth_bandpass_sos(4, 0.1, 0.4)
    assert not sos.flags.writeable
    assert sos is butterworth_bandpass_sos(4, 0.1, 0.4)
    kernel = zoom_kernel(-0.25, 0.25, 16, 8)
    assert not kernel.flags.writeable
    assert kernel is zoom_kernel(-0.25, 0.25, 16, 8)


def test_steering_matrix_shared_across_builders(small_radar, small_dsp):
    a = CubeBuilder(small_radar, small_dsp)
    b = CubeBuilder(small_radar, small_dsp)
    assert a._angle._steering is b._angle._steering


# ----------------------------------------------------------------------
# Dense filtfilt operator / bandpass equivalence
# ----------------------------------------------------------------------
def test_filtfilt_operator_matches_sosfiltfilt(small_radar, rng):
    dsp = DspConfig()
    data = rng.normal(
        size=(3, 4, small_radar.samples_per_chirp)
    ) + 1j * rng.normal(size=(3, 4, small_radar.samples_per_chirp))
    via_operator = hand_bandpass(data, small_radar, dsp, method="operator")
    via_scipy = hand_bandpass(data, small_radar, dsp, method="sosfiltfilt")
    scale = np.abs(via_scipy).max()
    assert np.abs(via_operator - via_scipy).max() / scale < 1e-12


def test_hand_bandpass_rejects_unknown_method(small_radar):
    data = np.zeros((2, small_radar.samples_per_chirp))
    with pytest.raises(SignalProcessingError):
        hand_bandpass(data, small_radar, DspConfig(), method="nope")


def test_filtfilt_operator_is_frozen():
    op = filtfilt_operator(4, 0.1, 0.4, 32, 9)
    assert not op.flags.writeable
    assert op.shape == (32, 32)


# ----------------------------------------------------------------------
# Precision policy
# ----------------------------------------------------------------------
def test_precision_validation():
    assert DspConfig(precision="fast").complex_dtype == "complex64"
    assert DspConfig().float_dtype == "float64"
    with pytest.raises(ConfigError):
        DspConfig(precision="half")


def test_fast_precision_cube_dtype_and_tolerance(
    small_radar, small_dsp, small_raw
):
    import dataclasses

    exact = CubeBuilder(small_radar, small_dsp).build(small_raw)
    fast = CubeBuilder(
        small_radar, dataclasses.replace(small_dsp, precision="fast")
    ).build(small_raw)
    assert fast.values.dtype == np.float32
    assert exact.values.dtype == np.float64
    scale = np.abs(exact.values).max()
    assert np.abs(fast.values - exact.values).max() / scale < 1e-5


def test_fast_precision_joint_outputs_close(
    small_radar, small_dsp, small_model, small_raw
):
    import dataclasses

    from repro.core.regressor import HandJointRegressor
    from repro.dsp.radar_cube import segment_cube

    exact = CubeBuilder(small_radar, small_dsp).build(small_raw)
    fast = CubeBuilder(
        small_radar, dataclasses.replace(small_dsp, precision="fast")
    ).build(small_raw)
    regressor = HandJointRegressor(small_dsp, small_model, seed=3)
    regressor.eval()
    seg_exact = np.stack(
        segment_cube(exact.values, small_dsp.segment_frames)
    )
    seg_fast = np.stack(
        segment_cube(
            fast.values.astype(np.float64), small_dsp.segment_frames
        )
    )
    joints_exact = regressor.predict(seg_exact)
    joints_fast = regressor.predict(seg_fast)
    # documented tolerance: fast preprocessing moves predicted joints
    # by well under a millimetre
    assert np.abs(joints_fast - joints_exact).max() < 1e-3


# ----------------------------------------------------------------------
# Batched cube building
# ----------------------------------------------------------------------
def test_batched_build_matches_reference(small_radar, small_dsp, small_raw):
    builder = CubeBuilder(small_radar, small_dsp)
    batched = builder.build(small_raw)
    reference = builder.build_reference(small_raw)
    assert np.abs(batched.values - reference.values).max() <= 1e-9
    assert batched.values.shape == reference.values.shape


def test_build_timed_reports_all_stages(small_radar, small_dsp, small_raw):
    builder = CubeBuilder(small_radar, small_dsp)
    cube, timings = builder.build_timed(small_raw)
    assert set(timings) == {
        "bandpass", "range_fft", "doppler_fft", "angle",
    }
    assert all(t >= 0.0 for t in timings.values())
    assert cube.num_frames == small_raw.shape[0]


# ----------------------------------------------------------------------
# Batched radar synthesis
# ----------------------------------------------------------------------
def test_batched_sequence_noise_stream_identical(small_radar):
    # Pure-noise scenes: batched and per-frame draws must consume the
    # generator identically, making the outputs bit-identical.
    scenes = [Scene(hand=Scatterers.empty()) for _ in range(5)]
    a = RadarSimulator(small_radar, seed=11).sequence(scenes)
    b = RadarSimulator(small_radar, seed=11).sequence_reference(scenes)
    assert np.array_equal(a, b)


def test_batched_sequence_matches_reference(small_radar, rng):
    scenes = _scenes(rng, 4)
    a = RadarSimulator(small_radar, seed=2).sequence(scenes)
    b = RadarSimulator(small_radar, seed=2).sequence_reference(scenes)
    assert np.abs(a - b).max() / np.abs(b).max() < 1e-12


def test_batched_sequence_variable_scatterer_counts(small_radar, rng):
    scenes = _scenes(rng, 2, scatterers=3)
    scenes += [Scene(hand=Scatterers.empty())]
    scenes += _scenes(rng, 1, scatterers=6)
    a = RadarSimulator(small_radar, seed=5).sequence(scenes)
    b = RadarSimulator(small_radar, seed=5).sequence_reference(scenes)
    assert np.abs(a - b).max() / np.abs(b).max() < 1e-12


def test_synthesize_sequence_matches_frames(small_radar, rng):
    array = iwr1443_array(small_radar)
    frames = [s.all_scatterers() for s in _scenes(rng, 3)]
    rng_a = np.random.default_rng(9)
    rng_b = np.random.default_rng(9)
    batched = synthesize_sequence(small_radar, array, frames, rng_a)
    stacked = np.stack(
        [synthesize_frame(small_radar, array, f, rng_b) for f in frames]
    )
    assert np.abs(batched - stacked).max() / np.abs(stacked).max() < 1e-12


def test_simulate_sequences_deterministic_per_seed(small_radar, rng):
    lists = [_scenes(rng, 2), _scenes(rng, 3)]
    serial = simulate_sequences(
        small_radar, lists, seeds=[1, 2], workers=1
    )
    again = simulate_sequences(
        small_radar, lists, seeds=[1, 2], workers=1
    )
    assert len(serial) == 2
    assert serial[0].shape[0] == 2 and serial[1].shape[0] == 3
    for a, b in zip(serial, again):
        assert np.array_equal(a, b)


def test_simulate_sequences_requires_matching_seeds(small_radar, rng):
    from repro.errors import RadarError

    with pytest.raises(RadarError):
        simulate_sequences(small_radar, [_scenes(rng, 2)], seeds=[1, 2])


# ----------------------------------------------------------------------
# Vectorized CFAR
# ----------------------------------------------------------------------
def test_ca_cfar_matches_reference_on_random_profiles(rng):
    for _ in range(50):
        n = int(rng.integers(17, 200))
        guard = int(rng.integers(0, 4))
        train = int(rng.integers(1, 7))
        if n < 2 * (guard + train) + 1:
            continue
        profile = rng.exponential(1.0, size=n)
        profile[int(rng.integers(0, n))] *= 30.0
        config = CfarConfig(guard_cells=guard, training_cells=train)
        assert np.array_equal(
            ca_cfar(profile, config), ca_cfar_reference(profile, config)
        )


def test_ca_cfar_reference_validation():
    with pytest.raises(SignalProcessingError):
        ca_cfar_reference(np.ones(5), CfarConfig())
    with pytest.raises(SignalProcessingError):
        ca_cfar(-np.ones(64), CfarConfig())


# ----------------------------------------------------------------------
# Benchmark harness
# ----------------------------------------------------------------------
def test_run_pipeline_bench_smoke(tmp_path):
    from repro.perf import run_pipeline_bench, write_bench_json

    summary = run_pipeline_bench(smoke=True, seed=0)
    assert summary["smoke"] is True
    cube = summary["cube_build"]
    assert cube["batched_exact"]["max_abs_diff_vs_reference"] <= 1e-9
    assert cube["batched_fast"]["max_rel_diff_vs_reference"] < 1e-5
    assert summary["cfar"]["vectorized"]["mask_identical"] is True
    assert summary["simulator"]["batched"]["max_rel_diff_vs_reference"] < 1e-12
    assert summary["plan_cache"]["hits"] >= 0
    path = write_bench_json(str(tmp_path / "out" / "bench.json"), summary)
    with open(path) as fh:
        loaded = json.load(fh)
    assert loaded["cube_build"]["frames"] == cube["frames"]
