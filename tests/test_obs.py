"""Tests of the observability subsystem (:mod:`repro.obs`): trace
spans (nesting, exception safety, concurrency, exporters), the metrics
registry (histograms, collectors, Prometheus exposition), structured
logging, and end-to-end correlation through the serving stack."""

import io
import json
import threading

import numpy as np
import pytest

from repro.errors import ObservabilityError, ServingError
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.logging import configure, get_logger
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def _reset_logging():
    """Every test starts from the default logging configuration."""
    yield
    obs_logging._CONFIG.__init__()
    obs_logging._LOGGERS.clear()


# ----------------------------------------------------------------------
# Trace spans
# ----------------------------------------------------------------------

def test_span_nesting_records_parent_ids():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("middle") as middle:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is middle
    assert tracer.current() is None
    records = {r["name"]: r for r in tracer.spans()}
    assert records["outer"]["parent_id"] is None
    assert records["middle"]["parent_id"] == records["outer"]["span_id"]
    assert records["inner"]["parent_id"] == records["middle"]["span_id"]
    # Children finish before parents, so buffer order is inner-first.
    assert [r["name"] for r in tracer.spans()] == [
        "inner", "middle", "outer",
    ]


def test_span_exception_marks_error_and_reraises():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            with tracer.span("failing"):
                raise ValueError("boom")
    records = {r["name"]: r for r in tracer.spans()}
    assert records["failing"]["status"] == "error"
    assert records["failing"]["error"] == "ValueError"
    # The parent also unwinds through the exception path.
    assert records["outer"]["status"] == "error"
    # The stack fully unwound; the tracer is reusable.
    assert tracer.current() is None
    with tracer.span("after"):
        pass
    assert tracer.spans()[-1]["parent_id"] is None


def test_span_fields_and_set():
    tracer = Tracer()
    with tracer.span("work", frames=8) as span:
        span.set(result="ok")
    record = tracer.spans()[0]
    assert record["fields"] == {"frames": 8, "result": "ok"}
    assert record["duration_s"] >= 0.0


def test_tracer_disabled_context():
    tracer = Tracer()
    with tracer.disabled():
        with tracer.span("hidden"):
            pass
    assert len(tracer) == 0
    with tracer.span("visible"):
        pass
    assert len(tracer) == 1


def test_tracer_bounded_capacity():
    tracer = Tracer(capacity=4)
    for i in range(10):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer) == 4
    assert [r["name"] for r in tracer.spans()] == [
        "s6", "s7", "s8", "s9",
    ]
    with pytest.raises(ObservabilityError):
        Tracer(capacity=0)


def test_concurrent_span_emission_keeps_threads_separate():
    tracer = Tracer()
    threads = 6
    spans_per_thread = 40
    barrier = threading.Barrier(threads)

    def worker(tid):
        barrier.wait()
        for i in range(spans_per_thread):
            with tracer.span("outer", tid=tid):
                with tracer.span("inner", tid=tid, i=i):
                    pass

    workers = [
        threading.Thread(target=worker, args=(t,)) for t in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    records = tracer.spans()
    assert len(records) == threads * spans_per_thread * 2
    by_id = {r["span_id"]: r for r in records}
    for record in records:
        if record["name"] != "inner":
            continue
        parent = by_id[record["parent_id"]]
        # Nesting never crosses threads: each inner span's parent is an
        # outer span from the same worker.
        assert parent["name"] == "outer"
        assert parent["thread_id"] == record["thread_id"]
        assert parent["fields"]["tid"] == record["fields"]["tid"]


def test_correlation_context_scoping():
    tracer = Tracer()
    with tracer.correlation("session-A"):
        with tracer.span("inside"):
            pass
        assert tracer.get_correlation() == "session-A"
    assert tracer.get_correlation() is None
    with tracer.span("outside"):
        pass
    records = {r["name"]: r for r in tracer.spans()}
    assert records["inside"]["correlation_id"] == "session-A"
    assert "correlation_id" not in records["outside"]


def test_chrome_trace_round_trip(tmp_path):
    tracer = Tracer()
    with tracer.correlation("corr-1"):
        with tracer.span("parent", frames=2):
            with tracer.span("child"):
                pass
    path = tracer.export_chrome(str(tmp_path / "trace.json"))
    doc = json.loads(open(path).read())
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    assert len(events) == 2
    # Sorted by start time: the parent starts first.
    parent, child = events
    assert parent["name"] == "parent"
    assert child["args"]["parent_id"] == parent["args"]["span_id"]
    for event in events:
        assert event["ph"] == "X"
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0
        assert event["cat"] == event["name"].split(".", 1)[0]
        assert event["args"]["correlation_id"] == "corr-1"
    assert parent["args"]["frames"] == 2


def test_jsonl_export_round_trip(tmp_path):
    tracer = Tracer()
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    path = tracer.export_jsonl(str(tmp_path / "spans.jsonl"))
    lines = [json.loads(line) for line in open(path)]
    assert [r["name"] for r in lines] == ["a", "b"]


def test_global_tracer_facade(tmp_path):
    obs_trace.clear()
    with obs_trace.span("facade.test"):
        pass
    assert "facade.test" in obs_trace.summary()
    path = obs_trace.export_chrome(str(tmp_path / "t.json"))
    names = {
        e["name"] for e in json.loads(open(path).read())["traceEvents"]
    }
    assert "facade.test" in names
    obs_trace.clear()
    assert len(obs_trace.get_tracer()) == 0


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def test_histogram_lifetime_sum_and_means():
    hist = Histogram("h", capacity=4)
    for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
        hist.observe(value)
    summary = hist.summary()
    assert summary["count"] == 6
    assert summary["sum"] == pytest.approx(21.0)
    # Lifetime mean covers every observation; the window mean covers
    # only the last `capacity` samples (3, 4, 5, 6).
    assert summary["mean"] == pytest.approx(21.0 / 6)
    assert summary["window_mean"] == pytest.approx(4.5)
    assert summary["max"] == pytest.approx(6.0)
    assert hist.sum == pytest.approx(21.0)


def test_histogram_empty_summary():
    summary = Histogram("h").summary()
    assert summary == {
        "count": 0, "sum": 0.0, "mean": 0.0, "window_mean": 0.0,
        "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
    }


def test_registry_collector_runs_on_snapshot_and_prometheus():
    registry = MetricsRegistry()
    calls = []

    def collect(reg):
        calls.append(1)
        reg.gauge("derived.depth").set(7)

    registry.register_collector(collect)
    registry.register_collector(collect)  # duplicate: no-op
    snapshot = registry.snapshot()
    assert snapshot["gauges"]["derived.depth"] == 7.0
    registry.to_prometheus()
    assert len(calls) == 2


def test_prometheus_exposition_format():
    registry = MetricsRegistry()
    registry.counter("dsp.plan_cache.hits").increment(3)
    registry.gauge("serving.queue.depth").set(2)
    hist = registry.histogram("serving.latency_s")
    for value in (0.1, 0.2, 0.3):
        hist.observe(value)
    text = registry.to_prometheus()
    assert text.endswith("\n")
    assert "# TYPE mmhand_dsp_plan_cache_hits_total counter" in text
    assert "mmhand_dsp_plan_cache_hits_total 3" in text
    assert "# TYPE mmhand_serving_queue_depth gauge" in text
    assert "mmhand_serving_queue_depth 2.0" in text
    # Histograms expose cumulative le buckets (+Inf = lifetime count)
    # plus _sum/_count, with reservoir quantiles alongside.
    assert "# TYPE mmhand_serving_latency_s histogram" in text
    assert 'mmhand_serving_latency_s_bucket{le="0.1"} 1' in text
    assert 'mmhand_serving_latency_s_bucket{le="0.25"} 2' in text
    assert 'mmhand_serving_latency_s_bucket{le="0.5"} 3' in text
    assert 'mmhand_serving_latency_s_bucket{le="+Inf"} 3' in text
    assert "# TYPE mmhand_serving_latency_s_quantiles summary" in text
    assert 'mmhand_serving_latency_s_quantiles{quantile="0.5"} 0.2' in text
    assert "mmhand_serving_latency_s_count 3" in text
    assert "mmhand_serving_latency_s_sum 0.6" in text
    # Every metric has a HELP line preceding its TYPE line.
    lines = text.strip().splitlines()
    for index, line in enumerate(lines):
        if line.startswith("# TYPE"):
            metric = line.split()[2]
            assert lines[index - 1].startswith(f"# HELP {metric} ")
    # Every non-comment line is "name[{labels}] value".
    for line in lines:
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        assert name
        float(value)


def test_prometheus_help_override_and_bucket_monotonicity():
    registry = MetricsRegistry()
    registry.describe("latency_s", "end-to-end serving latency")
    hist = registry.histogram("latency_s")
    for value in (0.0001, 0.003, 0.04, 0.9, 99.0):
        hist.observe(value)
    text = registry.to_prometheus()
    assert "# HELP mmhand_latency_s end-to-end serving latency" in text
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("mmhand_latency_s_bucket")
    ]
    assert counts == sorted(counts)  # cumulative
    assert counts[-1] == 5  # +Inf holds every observation (99 > 10s)
    assert counts[-2] == 4  # largest finite bound misses the outlier


def test_event_log_tracks_dropped_and_exposes_it():
    registry = MetricsRegistry(event_capacity=4)
    for index in range(10):
        registry.events.emit("tick", index=index)
    assert registry.events.emitted == 10
    assert registry.events.dropped == 6
    assert len(registry.events) == 4
    snapshot = registry.snapshot()
    assert snapshot["events_dropped"] == 6
    assert snapshot["events_emitted"] == 10
    text = registry.to_prometheus()
    assert "mmhand_events_dropped_total 6" in text
    assert "mmhand_events_emitted_total 10" in text


def test_serving_metrics_shim_reexports():
    import importlib
    import sys

    sys.modules.pop("repro.serving.metrics", None)
    with pytest.warns(DeprecationWarning):
        shim = importlib.import_module("repro.serving.metrics")

    assert shim.MetricsRegistry is MetricsRegistry
    assert shim.Histogram is Histogram
    with pytest.raises(ServingError):
        shim.Histogram("h", capacity=0)


def test_global_registry_facade():
    registry = obs_metrics.get_registry()
    before = registry.counter("test.obs.facade").value
    obs_metrics.counter("test.obs.facade").increment()
    assert registry.counter("test.obs.facade").value == before + 1
    obs_metrics.emit("test_event", detail=1)
    assert len(registry.events) >= 1


def test_plan_cache_collector_publishes_counters():
    from repro.dsp.plans import PLAN_CACHE, publish_plan_cache_metrics

    registry = MetricsRegistry()
    registry.register_collector(publish_plan_cache_metrics)
    stats = PLAN_CACHE.stats()
    snapshot = registry.snapshot()
    assert snapshot["counters"]["dsp.plan_cache.hits"] >= stats["hits"]
    assert (
        snapshot["counters"]["dsp.plan_cache.misses"] >= stats["misses"]
    )
    # Counters stay monotonic across repeated collections.
    second = registry.snapshot()
    assert (
        second["counters"]["dsp.plan_cache.hits"]
        >= snapshot["counters"]["dsp.plan_cache.hits"]
    )


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------

def test_logfmt_line_shape():
    stream = io.StringIO()
    configure(fmt="logfmt", stream=stream)
    line = get_logger("test").info(
        "hello world", n=3, f=1.5, flag=True, quoted='a "b"'
    )
    assert line is not None
    assert 'event="hello world"' in line
    assert "n=3" in line
    assert "f=1.5" in line
    assert "flag=true" in line
    assert "logger=test" in line
    assert stream.getvalue().strip() == line


def test_json_log_format_round_trips():
    stream = io.StringIO()
    configure(fmt="json", stream=stream)
    get_logger("test").warning("odd", code=7)
    record = json.loads(stream.getvalue())
    assert record["level"] == "warning"
    assert record["event"] == "odd"
    assert record["code"] == 7


def test_log_level_filtering():
    stream = io.StringIO()
    configure(stream=stream, level="warning")
    logger = get_logger("test")
    assert logger.info("quiet") is None
    assert logger.warning("loud") is not None
    assert "quiet" not in stream.getvalue()


def test_rate_limit_suppresses_and_reports():
    stream = io.StringIO()
    configure(stream=stream, rate_limit_hz=0.001, burst=2)
    logger = get_logger("hot")
    emitted = [logger.info("tick", i=i) for i in range(10)]
    assert sum(line is not None for line in emitted) == 2
    # Lifting the limit: the next line reports what was dropped.
    configure(rate_limit_hz=1e9, burst=10)
    line = logger.info("after")
    assert line is not None and "suppressed=" not in line  # bucket reset
    configure(rate_limit_hz=0)  # disable limiting again


def test_log_carries_span_and_correlation_context():
    stream = io.StringIO()
    configure(stream=stream)
    obs_trace.clear()
    with obs_trace.get_tracer().correlation("sess-9"):
        with obs_trace.span("ctx.work"):
            line = get_logger("test").info("step")
    assert "span=ctx.work" in line
    assert "corr_id=sess-9" in line
    assert "span_id=" in line


def test_configure_rejects_bad_values():
    with pytest.raises(ObservabilityError):
        configure(fmt="xml")
    with pytest.raises(ObservabilityError):
        configure(level="loud")


# ----------------------------------------------------------------------
# Serving smoke: correlation end to end
# ----------------------------------------------------------------------

def test_serving_correlation_ids_flow_to_events_and_prometheus():
    from repro.config import DspConfig, ModelConfig, RadarConfig
    from repro.core.regressor import HandJointRegressor
    from repro.dsp.radar_cube import CubeBuilder
    from repro.serving import InferenceServer, ServingConfig

    radar = RadarConfig(samples_per_chirp=32, chirp_loops=8)
    dsp = DspConfig(
        range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
        segment_frames=2,
    )
    model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1, feature_dim=16,
        lstm_hidden=16,
    )
    regressor = HandJointRegressor(dsp, model, seed=7)
    regressor.eval()
    server = InferenceServer(
        CubeBuilder(radar, dsp), regressor,
        ServingConfig(max_batch_size=4),
    )
    rng = np.random.default_rng(0)
    session_id = server.open_session("client-1")
    antennas = server.builder.array.num_virtual
    results = []
    for _ in range(4):
        server.submit(
            session_id,
            rng.normal(size=(antennas, radar.chirp_loops,
                             radar.samples_per_chirp)),
        )
        results.extend(server.step())
    results.extend(server.drain())

    assert results
    corr_ids = {result.corr_id for result in results}
    assert all(
        cid.startswith("client-1#") for cid in corr_ids
    )
    # Every served batch logged the correlation ids it carried.
    served = [
        event for event in server.metrics.events.tail()
        if event["kind"] == "batch_served"
    ]
    assert served
    logged = {cid for event in served for cid in event["corr_ids"]}
    assert corr_ids <= logged

    # stats() and the Prometheus exposition expose the same counters,
    # including the plan-cache instruments.
    stats = server.stats()
    text = server.prometheus()
    assert stats["plan_cache"]["misses"] >= 1
    assert (
        f"mmhand_poses_total {stats['counters']['poses']}" in text
    )
    assert (
        f"mmhand_dsp_plan_cache_hits_total "
        f"{stats['counters']['dsp.plan_cache.hits']}" in text
    )
    assert (
        stats["counters"]["dsp.plan_cache.hits"]
        >= stats["plan_cache"]["hits"] - stats["plan_cache"]["misses"]
    )

    # DSP spans emitted during feed() carry the session id.
    dsp_spans = [
        record for record in obs_trace.get_tracer().spans()
        if record["name"] == "dsp.cube.build"
        and record.get("correlation_id") == "client-1"
    ]
    assert dsp_spans


# ----------------------------------------------------------------------
# Cross-process trace propagation
# ----------------------------------------------------------------------


def test_remote_context_parents_spans_across_boundaries():
    """A span opened under ``remote_context`` adopts the propagated
    trace id and parent span id -- the cross-process stitch."""
    tracer = Tracer(capacity=16)
    with tracer.span("gateway.submit") as submit:
        context = tracer.current_context()
        assert context.trace_id == submit.trace_id
        assert context.span_id == submit.span_id

    # "The other side": a fresh tracer, as in a worker process.
    worker = Tracer(capacity=16)
    with worker.remote_context(context.trace_id, context.span_id):
        with worker.span("worker.ingest") as ingest:
            with worker.span("worker.forward"):
                pass
    records = {r["name"]: r for r in worker.spans()}
    assert records["worker.ingest"]["parent_id"] == context.span_id
    assert records["worker.ingest"]["trace_id"] == context.trace_id
    # Nested spans chain locally but stay inside the remote trace.
    assert records["worker.forward"]["parent_id"] == ingest.span_id
    assert records["worker.forward"]["trace_id"] == context.trace_id
    # Outside the context, spans root their own traces again.
    with worker.span("unrelated") as span:
        assert span.parent_id is None
        assert span.trace_id == span.span_id


def test_remote_context_noop_without_trace_id():
    tracer = Tracer(capacity=4)
    with tracer.remote_context(0, 0):
        with tracer.span("orphan") as span:
            assert span.parent_id is None
            assert span.trace_id == span.span_id


def test_tracer_record_and_drain():
    """``record`` injects pre-timed spans; ``drain`` empties the buffer
    (the worker ships spans home incrementally)."""
    tracer = Tracer(capacity=8)
    tracer.record(
        "worker.forward", 1.0, 1.25,
        trace_id=77, parent_id=42, correlation_id="s#3", batch=4,
    )
    (rec,) = tracer.drain()
    assert rec["name"] == "worker.forward"
    assert rec["trace_id"] == 77
    assert rec["parent_id"] == 42
    assert rec["correlation_id"] == "s#3"
    assert rec["fields"]["batch"] == 4
    assert rec["duration_s"] == pytest.approx(0.25)
    assert rec["pid"] == __import__("os").getpid()
    assert "start_unix" in rec
    # Drained spans are gone; the buffer refills from zero.
    assert tracer.drain() == []
    tracer.record("again", 0.0, 0.1)
    assert len(tracer.spans()) == 1


def test_export_chrome_merged_builds_process_lanes(tmp_path):
    """Records from several pids merge into one Chrome trace with named
    per-process lanes and wall-clock-aligned timestamps."""
    base = 1_700_000_000.0
    records = [
        {
            "name": "gateway.submit", "span_id": 1, "trace_id": 1,
            "parent_id": None, "start_s": 5.0, "duration_s": 0.010,
            "status": "ok", "thread_id": 10, "thread_name": "MainThread",
            "pid": 100, "start_unix": base + 0.000,
        },
        {
            "name": "worker.forward", "span_id": 2, "trace_id": 1,
            "parent_id": 1, "start_s": 0.5, "duration_s": 0.020,
            "status": "ok", "thread_id": 20, "thread_name": "MainThread",
            "pid": 200, "start_unix": base + 0.004,
        },
    ]
    path = str(tmp_path / "merged.json")
    obs_trace.export_chrome_merged(
        path, records, {100: "dispatcher", 200: "worker-0"}
    )
    with open(path) as fh:
        events = json.load(fh)["traceEvents"]
    lanes = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert lanes == {100: "dispatcher", 200: "worker-0"}
    spans = {e["name"]: e for e in events if e["ph"] == "X"}
    # Timestamps align on the shared wall clock, not per-process
    # monotonic epochs: the worker span starts 4ms after the submit.
    assert spans["worker.forward"]["ts"] - spans["gateway.submit"][
        "ts"
    ] == pytest.approx(4000.0, abs=1.0)
    assert spans["worker.forward"]["pid"] == 200
    assert spans["worker.forward"]["args"]["trace_id"] == 1


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------


def test_sampling_profiler_captures_stacks_and_reports():
    from repro.obs.profiler import SamplingProfiler, folded_from_dict

    def busy_loop(deadline):
        total = 0.0
        while time.perf_counter() < deadline:
            total += sum(i * i for i in range(200))
        return total

    import time

    profiler = SamplingProfiler(hz=200.0)
    with profiler:
        busy_loop(time.perf_counter() + 0.30)
    assert profiler.samples > 10
    counts = profiler.counts()
    assert counts
    # Stacks are thread-rooted and frame labels are module-qualified.
    assert all(stack.startswith("MainThread;") for stack in counts)
    assert any("busy_loop" in stack for stack in counts)
    folded = profiler.folded()
    assert folded == folded_from_dict(profiler.to_dict())
    top = profiler.top(limit=3)
    assert top and top[0][1] > 0
    assert 0.0 <= profiler.overhead_ratio() < 0.5
    stats = profiler.stats()
    assert stats["samples"] == profiler.samples
    # A second start() on the same profiler keeps accumulating.
    before = profiler.samples
    with profiler:
        busy_loop(time.perf_counter() + 0.05)
    assert profiler.samples > before


def test_merge_profiles_prefixes_lanes():
    from repro.obs.profiler import folded_from_dict, merge_profiles

    merged = merge_profiles(
        {
            "worker-0": {
                "counts": {"MainThread;a;b": 3},
                "samples": 3, "hz": 97.0,
                "elapsed_s": 1.0, "sample_cost_s": 0.001,
            },
            "worker-1": {
                "counts": {"MainThread;a;b": 2, "MainThread;c": 1},
                "samples": 3, "hz": 97.0,
                "elapsed_s": 0.5, "sample_cost_s": 0.002,
            },
            "empty": {},
        }
    )
    assert merged["counts"] == {
        "worker-0;MainThread;a;b": 3,
        "worker-1;MainThread;a;b": 2,
        "worker-1;MainThread;c": 1,
    }
    assert merged["samples"] == 6
    assert merged["elapsed_s"] == pytest.approx(1.0)
    assert merged["sample_cost_s"] == pytest.approx(0.003)
    lines = folded_from_dict(merged).splitlines()
    assert lines[0] == "worker-0;MainThread;a;b 3"
