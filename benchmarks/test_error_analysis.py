"""Extended error analysis (beyond the paper's metrics).

Decomposes the reproduction's error using the extended metric suite:
PA-MPJPE (pose error once global placement is factored out), the
centroid localisation error, bone-length consistency (what the kinematic
loss enforces), and the per-joint error profile. Also checks that the
mmHand-vs-baseline gap of Table I is statistically significant.
"""

import numpy as np

import _cache
from repro.eval.extended import (
    bone_length_error,
    localisation_vs_pose_error,
    pa_mpjpe,
    per_joint_error_table,
)
from repro.eval.report import render_table


def test_error_decomposition(benchmark, cv_records):
    preds = np.concatenate([r["predictions"] for r in cv_records])
    labels = np.concatenate([r["test"].labels for r in cv_records])

    loc_mm, pose_mm = localisation_vs_pose_error(preds, labels)
    pa_scaled = pa_mpjpe(preds, labels, allow_scale=True)
    bone_mm = bone_length_error(preds, labels)

    table = per_joint_error_table(preds, labels)
    worst = sorted(table.items(), key=lambda kv: -kv[1])[:3]
    best = sorted(table.items(), key=lambda kv: kv[1])[:3]

    rows = [
        ["global localisation (centroid)", f"{loc_mm:.1f}"],
        ["PA-MPJPE (rigid-aligned)", f"{pose_mm:.1f}"],
        ["PA-MPJPE (rigid + scale)", f"{pa_scaled:.1f}"],
        ["bone-length error", f"{bone_mm:.1f}"],
    ]
    for name, value in best:
        rows.append([f"best joint: {name}", f"{value:.1f}"])
    for name, value in worst:
        rows.append([f"worst joint: {name}", f"{value:.1f}"])
    _cache.record(
        "error_analysis",
        render_table(
            ["quantity", "mm"],
            rows,
            title="Error decomposition (not in the paper)",
        ),
    )

    # Shape: after factoring out rigid placement, the articulated-pose
    # error is below the raw MPJPE; fingertips are the hardest joints.
    from repro.eval.metrics import mpjpe

    assert pose_mm < mpjpe(preds, labels)
    tip_names = {f"{f}_tip" for f in
                 ("thumb", "index", "middle", "ring", "pinky")}
    assert any(name in tip_names for name, _ in worst)
    assert bone_mm < 40.0

    benchmark(lambda: pa_mpjpe(preds[:50], labels[:50]))


def test_significance_of_table1_gap(benchmark, cv_records):
    """The mmHand-vs-HandFi-baseline gap should be statistically
    significant under a paired bootstrap on the shared test set."""
    from repro.baselines import HandFiBaseline
    from repro.eval.significance import paired_bootstrap

    record = cv_records[0]
    campaign = _cache.load_campaign()
    test_users = set(record["test_users"])
    train_idx = [
        i for i, uid in enumerate(campaign.user_ids)
        if uid not in test_users
    ]
    baseline = HandFiBaseline(hidden=64)
    baseline.fit(campaign.subset(train_idx), epochs=10)
    baseline_preds = baseline.predict(record["test"].segments)

    result = paired_bootstrap(
        baseline_preds, record["predictions"], record["test"].labels,
        num_resamples=500,
    )
    _cache.record(
        "significance",
        render_table(
            ["quantity", "value"],
            [
                ["HandFi-style baseline MPJPE (mm)",
                 f"{result.mean_a_mm:.1f}"],
                ["mmHand MPJPE (mm)", f"{result.mean_b_mm:.1f}"],
                ["difference (mm)", f"{result.difference_mm:.1f}"],
                ["95% CI",
                 f"[{result.ci_low_mm:.1f}, {result.ci_high_mm:.1f}]"],
                ["p-value", f"{result.p_value:.4f}"],
            ],
            title="Paired bootstrap: mmHand vs coarse-resolution baseline",
        ),
    )
    assert result.difference_mm > 0  # baseline is worse
    assert result.significant

    errors = record["predictions"] - record["test"].labels
    benchmark(lambda: np.linalg.norm(errors, axis=2).mean())
