"""Paper Sec. VI-H: impact of handheld objects.

Paper result (Fig. 23): small palm-centred objects (table-tennis ball,
headphone case) barely disturb estimation because they sit in the palm
and only slightly perturb the reflections; a pen extending past the
fingers is mistaken for a finger, and a power bank covering much of the
hand corrupts the finger estimates.
"""

import numpy as np

import _cache
from repro.eval import experiments
from repro.eval.report import render_table


def _compute(regressor, generator):
    subjects = _cache.condition_subjects()
    return experiments.handheld_experiment(
        regressor, generator, subjects, segments_per_user=10
    )


def test_handheld_objects(benchmark, primary_regressor, generator):
    result = _cache.memoize_json(
        "handheld", lambda: _compute(primary_regressor, generator)
    )

    order = ("table_tennis_ball", "headphone_case", "pen", "power_bank")
    rows = [
        [
            name,
            f"{result[name]['mpjpe_mm']:.1f}",
            f"{result[name]['fingers_mpjpe_mm']:.1f}",
            f"{result[name]['pck_percent']:.1f}",
        ]
        for name in order
    ]
    _cache.record(
        "handheld",
        render_table(
            ["object", "MPJPE (mm)", "finger MPJPE (mm)", "PCK (%)"],
            rows,
            title="Sec. VI-H: handheld objects "
                  "(paper: palm objects fine, pen/power bank corrupt "
                  "fingers)",
        ),
    )

    # Shape: the large/finger-adjacent objects (pen, power bank) hurt
    # more than the palm-centred ones (ball, case).
    small = np.mean(
        [result[n]["mpjpe_mm"]
         for n in ("table_tennis_ball", "headphone_case")]
    )
    large = np.mean(
        [result[n]["mpjpe_mm"] for n in ("pen", "power_bank")]
    )
    assert large > small

    segments = _cache.load_campaign().segments[:8]
    benchmark(lambda: primary_regressor.predict(segments))
