"""Paper Figs. 12-13: per-participant MPJPE and 3D-PCK over 5-fold CV.

Paper result: 18.3 mm average MPJPE (std 2.96 mm) and 95.1 % 3D-PCK at
the 40 mm threshold (std 1.17 %); the best/worst user gap is ~2.9 mm and
~3.3 %. The reproduction regenerates the same per-user rows from the
simulated campaign; absolute errors are expected to be somewhat higher
(simulated radar, scaled-down network) with the same flat per-user
profile.
"""

import _cache
from repro.eval import experiments
from repro.eval.report import render_table


def test_fig12_13_per_participant(benchmark, cv_records):
    result = experiments.overall_performance(cv_records)

    rows = [
        [
            str(uid),
            f"{entry['mpjpe_mm']:.1f}",
            f"{entry['pck_percent']:.1f}",
        ]
        for uid, entry in sorted(result["per_user"].items())
    ]
    rows.append(
        [
            "mean",
            f"{result['mean_mpjpe_mm']:.1f} (paper 18.3)",
            f"{result['mean_pck_percent']:.1f} (paper 95.1)",
        ]
    )
    rows.append(
        [
            "std",
            f"{result['std_mpjpe_mm']:.2f} (paper 2.96)",
            f"{result['std_pck_percent']:.2f} (paper 1.17)",
        ]
    )
    _cache.record(
        "fig12_13_overall",
        render_table(
            ["user", "MPJPE (mm)", "3D-PCK@40mm (%)"],
            rows,
            title="Figs. 12-13: per-participant performance "
                  "(5-fold CV by user pairs)",
        ),
    )

    # Shape assertions: sane error band and a flat per-user profile.
    assert result["mean_mpjpe_mm"] < 45.0
    assert result["mean_pck_percent"] > 55.0
    spread = max(
        e["mpjpe_mm"] for e in result["per_user"].values()
    ) - min(e["mpjpe_mm"] for e in result["per_user"].values())
    assert spread < 25.0

    # Benchmark: per-segment joint regression (the deployed inference op).
    segments = cv_records[0]["test"].segments[:8]
    regressor = cv_records[0]["regressor"]
    benchmark(lambda: regressor.predict(segments))
