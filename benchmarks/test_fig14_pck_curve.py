"""Paper Fig. 14: 3D-PCK vs error threshold with palm/fingers/overall AUC.

Paper result: PCK rises steeply with threshold, reaching 95.1 % overall
at 40 mm; AUC over 0-60 mm is 0.722 (palm) / 0.691 (fingers) / 0.707
(overall) -- the palm is easier than the fingers because it lacks
flexible deformation.
"""

import numpy as np

import _cache
from repro.eval import experiments
from repro.eval.metrics import pck
from repro.eval.report import render_series


def test_fig14_pck_threshold_curves(benchmark, cv_records):
    result = experiments.pck_threshold_curves(cv_records)

    thresholds = result["thresholds_mm"]
    probe = [0, 10, 20, 30, 40, 50, 60]
    indices = [int(np.argmin(np.abs(thresholds - p))) for p in probe]
    series = {
        name: [result["curves"][name][i] for i in indices]
        for name in ("palm", "fingers", "overall")
    }
    text = render_series(
        probe, series, x_label="threshold (mm)", y_label="PCK %",
        title="Fig. 14: 3D-PCK vs threshold",
    )
    auc_line = (
        "AUC: palm {palm:.3f} (paper 0.722) | fingers {fingers:.3f} "
        "(paper 0.691) | overall {overall:.3f} (paper 0.707)".format(
            **result["auc"]
        )
    )
    _cache.record("fig14_pck_curve", text + "\n" + auc_line)

    # Shape: curves are monotone; the palm beats the fingers, overall
    # sits between them.
    for curve in result["curves"].values():
        assert np.all(np.diff(curve) >= 0)
    assert result["auc"]["palm"] > result["auc"]["fingers"]
    assert (
        result["auc"]["fingers"]
        <= result["auc"]["overall"]
        <= result["auc"]["palm"]
    )
    assert result["auc"]["overall"] > 0.4

    preds = np.concatenate([r["predictions"] for r in cv_records])
    labels = np.concatenate([r["test"].labels for r in cv_records])
    benchmark(lambda: pck(preds, labels, threshold_mm=40.0))
