"""Pipeline benchmark entry point (thin wrapper over ``repro.perf``).

Times the batched DSP hot path -- cube building, radar synthesis, CFAR
and the simulate+preprocess chain -- against the kept per-frame
reference implementations, and records the equivalence error of every
fast path next to its timing.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --json \
        BENCH_pipeline.json

Equivalent to ``mmhand bench``; ``--smoke`` shrinks the workload for CI.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.perf import (
    print_pipeline_report,
    run_pipeline_bench,
    write_bench_json,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI regression checks")
    parser.add_argument("--json", dest="json_path",
                        default="BENCH_pipeline.json")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N timing repeats")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    summary = run_pipeline_bench(
        smoke=args.smoke, repeats=args.repeats, seed=args.seed
    )
    print_pipeline_report(summary)
    write_bench_json(args.json_path, summary)
    print(f"summary -> {args.json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
