"""Ablations of mmHand's design choices (DESIGN.md Sec. 5).

Not a paper table -- these benches probe the components the paper
credits: the attention mechanisms of mmSpaceNet, the kinematic loss
term, the zoom-FFT angle refinement, and multi-frame segments vs single
frames. Each variant trains at reduced scale (4 users) so the sweep
stays tractable; results are memoized.
"""

import numpy as np

import _cache
from repro.config import (
    CampaignConfig,
    ModelConfig,
    TrainConfig,
)
from repro.core.regressor import HandJointRegressor
from repro.core.training import Trainer
from repro.data.collection import CampaignGenerator
from repro.eval.metrics import mpjpe, pck
from repro.eval.report import render_table

_ABLATION_TRAIN = TrainConfig(epochs=10, batch_size=16, seed=0)
_ABLATION_USERS = 4


def _ablation_data(dsp=None):
    subjects = _cache.bench_subjects()[:_ABLATION_USERS]
    generator = CampaignGenerator(
        _cache.BENCH_RADAR,
        dsp if dsp is not None else _cache.BENCH_DSP,
        CampaignConfig(num_users=_ABLATION_USERS, segments_per_user=90),
    )
    dataset = generator.generate(subjects=subjects, seed=21)
    train = dataset.subset(np.nonzero(dataset.user_ids != 1)[0])
    test = dataset.subset(np.nonzero(dataset.user_ids == 1)[0])
    return train, test


def _run_variant(train, test, model=None, train_config=None, take_frames=None):
    dsp = _cache.BENCH_DSP
    if take_frames is not None:
        # Segment-length ablation: keep only the last frames of each
        # segment without regenerating radar data.
        from dataclasses import replace

        dsp = replace(dsp, segment_frames=take_frames)
        train = _slice_frames(train, take_frames)
        test = _slice_frames(test, take_frames)
    regressor = HandJointRegressor(
        dsp, model if model is not None else _cache.BENCH_MODEL
    )
    trainer = Trainer(
        regressor,
        train_config if train_config is not None else _ABLATION_TRAIN,
    )
    trainer.fit(train)
    pred = trainer.predict(test)
    return {
        "mpjpe_mm": mpjpe(pred, test.labels),
        "pck_percent": pck(pred, test.labels),
    }


def _slice_frames(dataset, frames):
    from repro.data.dataset import HandPoseDataset

    return HandPoseDataset(
        segments=dataset.segments[:, -frames:],
        labels=dataset.labels,
        true_joints=dataset.true_joints,
        meta=list(dataset.meta),
    )


def _compute():
    train, test = _ablation_data()
    results = {}
    results["full"] = _run_variant(train, test)
    results["no_attention"] = _run_variant(
        train,
        test,
        model=ModelConfig(
            use_frame_attention=False,
            use_velocity_attention=False,
            use_spatial_attention=False,
        ),
    )
    results["no_kinematic_loss"] = _run_variant(
        train,
        test,
        train_config=TrainConfig(
            epochs=_ABLATION_TRAIN.epochs,
            batch_size=_ABLATION_TRAIN.batch_size,
            gamma_kinematic=0.0,
            seed=0,
        ),
    )
    results["single_frame"] = _run_variant(train, test, take_frames=1)

    from dataclasses import replace

    zoom1_dsp = replace(_cache.BENCH_DSP, zoom_factor=1)
    train_z, test_z = _ablation_data(dsp=zoom1_dsp)
    regressor = HandJointRegressor(zoom1_dsp, _cache.BENCH_MODEL)
    trainer = Trainer(regressor, _ABLATION_TRAIN)
    trainer.fit(train_z)
    pred = trainer.predict(test_z)
    results["no_zoom_fft"] = {
        "mpjpe_mm": mpjpe(pred, test_z.labels),
        "pck_percent": pck(pred, test_z.labels),
    }
    return results


def test_ablations(benchmark):
    results = _cache.memoize_json("ablations", _compute)

    rows = [
        [name, f"{entry['mpjpe_mm']:.1f}", f"{entry['pck_percent']:.1f}"]
        for name, entry in results.items()
    ]
    _cache.record(
        "ablations",
        render_table(
            ["variant", "MPJPE (mm)", "PCK (%)"],
            rows,
            title="Ablations (4-user reduced scale, cross-user test)",
        ),
    )

    # Sanity: every variant still learns a usable model.
    for name, entry in results.items():
        assert entry["mpjpe_mm"] < 80.0, name
        assert entry["pck_percent"] > 20.0, name
    # Multi-frame segments are a core design point: single-frame input
    # should not beat the full model by a wide margin.
    assert results["full"]["mpjpe_mm"] < (
        results["single_frame"]["mpjpe_mm"] + 10.0
    )

    # Benchmark one training step at ablation scale.
    train, _ = _ablation_data()
    regressor = HandJointRegressor(_cache.BENCH_DSP, _cache.BENCH_MODEL)
    trainer = Trainer(
        regressor, TrainConfig(epochs=1, batch_size=16, seed=0)
    )
    small = train.subset(range(16))

    benchmark(lambda: trainer.fit(small))
