"""Paper Fig. 15: CDF of per-joint position errors.

Paper result: 90.2 % of predicted hand joints fall within 30 mm of the
ground truth. The reproduction prints the CDF at the same probe points.
"""

import numpy as np

import _cache
from repro.eval import experiments
from repro.eval.metrics import error_cdf
from repro.eval.report import render_cdf_summary


def test_fig15_error_cdf(benchmark, cv_records):
    result = experiments.mpjpe_cdf(cv_records)

    text = render_cdf_summary(
        result["errors_mm"],
        result["fractions"],
        probe_mm=(10, 20, 30, 40, 50, 60),
        title="Fig. 15: CDF of per-joint errors",
    )
    text += (
        f"\nwithin 30 mm: {result['within_30mm_percent']:.1f} % "
        "(paper 90.2 %)"
    )
    _cache.record("fig15_cdf", text)

    # Shape: the CDF is a proper distribution function that has risen
    # substantially by 40 mm.
    fractions = result["fractions"]
    assert fractions[-1] == 1.0
    assert np.all(np.diff(result["errors_mm"]) >= 0)
    within40 = fractions[result["errors_mm"] <= 40.0]
    assert len(within40) and within40[-1] > 0.55

    preds = np.concatenate([r["predictions"] for r in cv_records])
    labels = np.concatenate([r["test"].labels for r in cv_records])
    benchmark(lambda: error_cdf(preds, labels))
