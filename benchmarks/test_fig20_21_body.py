"""Paper Figs. 20-21: impact of the user's body position.

Paper result: type 1 (standing in front of the radar, hand outstretched;
body directly behind the hand) gives 19.1 mm / 93.6 %; type 2 (standing
beside the radar, hand reached in front) gives 18.1 mm / 95.4 %. The gap
is small because the bandpass pre-processing removes body reflections at
longer range than the hand.
"""

import _cache
from repro.eval import experiments
from repro.eval.report import render_table


def _compute(regressor, generator):
    subjects = _cache.condition_subjects()
    return experiments.body_position_experiment(
        regressor, generator, subjects, segments_per_user=12
    )


def test_fig20_21_body_position(benchmark, primary_regressor, generator):
    result = _cache.memoize_json(
        "fig20_21_body", lambda: _compute(primary_regressor, generator)
    )

    rows = []
    for name, paper in (
        ("type1_front", "paper: 19.1 mm / 93.6 %"),
        ("type2_side", "paper: 18.1 mm / 95.4 %"),
    ):
        entry = result[name]
        rows.append(
            [
                name,
                f"{entry['mpjpe_mm']:.1f}",
                f"{entry['pck_percent']:.1f}",
                paper,
            ]
        )
    _cache.record(
        "fig20_21_body",
        render_table(
            ["body position", "MPJPE (mm)", "PCK (%)", "reference"],
            rows,
            title="Figs. 20-21: impact of body position",
        ),
    )

    front = result["type1_front"]
    side = result["type2_side"]
    # Shape: the difference between the two placements is small --
    # the bandpass filter removes the (farther) body either way.
    assert abs(front["mpjpe_mm"] - side["mpjpe_mm"]) < 8.0
    assert front["mpjpe_mm"] < 50.0 and side["mpjpe_mm"] < 50.0

    segments = _cache.load_campaign().segments[:8]
    benchmark(lambda: primary_regressor.predict(segments))
