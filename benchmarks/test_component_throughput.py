"""Component micro-benchmarks: per-stage throughput of the pipeline.

Not a paper figure -- these benches time the individual subsystems
(IF synthesis, pre-processing, spatial network, temporal model, MANO
evaluation, IK recovery) so regressions in any stage are visible.
"""

import numpy as np
import pytest

import _cache
from repro.dsp.radar_cube import CubeBuilder
from repro.hand.gestures import gesture_pose
from repro.hand.subjects import make_subjects
from repro.mano.model import ManoHandModel, random_theta
from repro.nn.tensor import Tensor, no_grad
from repro.radar.radar import RadarSimulator
from repro.radar.scatterers import hand_scatterers
from repro.radar.scene import Scene


@pytest.fixture(scope="module")
def scene():
    shape = make_subjects(1)[0].hand_shape()
    pose = gesture_pose(
        "open_palm", wrist_position=np.array([0.3, 0.0, 0.0])
    )
    return Scene(
        hand=hand_scatterers(shape, pose, rng=np.random.default_rng(0))
    )


def test_if_synthesis_throughput(benchmark, scene):
    sim = RadarSimulator(_cache.BENCH_RADAR)
    benchmark(lambda: sim.frame(scene))


def test_cube_build_throughput(benchmark, scene):
    sim = RadarSimulator(_cache.BENCH_RADAR)
    raw = sim.frame(scene)[None]
    builder = CubeBuilder(_cache.BENCH_RADAR, _cache.BENCH_DSP)
    benchmark(lambda: builder.build(raw))


def test_mmspacenet_forward_throughput(benchmark):
    regressor = _cache.make_regressor()
    regressor.eval()
    dsp = _cache.BENCH_DSP
    x = Tensor(
        np.zeros(
            (1, dsp.segment_frames, dsp.doppler_bins, dsp.range_bins,
             dsp.angle_bins_total),
            dtype=np.float32,
        )
    )

    def forward():
        with no_grad():
            regressor.spatial(x)

    benchmark(forward)


def test_full_regressor_forward_throughput(benchmark):
    regressor = _cache.make_regressor()
    regressor.eval()
    dsp = _cache.BENCH_DSP
    segment = np.zeros(
        (1, dsp.segment_frames, dsp.doppler_bins, dsp.range_bins,
         dsp.angle_bins_total),
        dtype=np.float32,
    )
    benchmark(lambda: regressor.predict(segment))


def test_mano_evaluation_throughput(benchmark):
    model = ManoHandModel()
    theta = random_theta(np.random.default_rng(0))
    beta = np.zeros(10)
    benchmark(lambda: model(beta=beta, theta=theta))


def test_mesh_recovery_throughput(benchmark):
    reconstructor = _cache.load_mesh_reconstructor()
    joints = reconstructor.hand_model.rest_joints() + np.array(
        [0.3, 0.0, 0.0]
    )
    benchmark(lambda: reconstructor.reconstruct(joints))
