"""Benchmark harness configuration: make the shared ``_cache`` module
importable and expose common fixtures."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

import _cache  # noqa: E402


@pytest.fixture(scope="session")
def cv_records():
    """The five trained cross-validation folds (built on first use)."""
    return _cache.load_cv_records()


@pytest.fixture(scope="session")
def primary_regressor(cv_records):
    """Fold 0's trained regressor, used by the condition experiments."""
    return cv_records[0]["regressor"]


@pytest.fixture(scope="session")
def generator():
    return _cache.make_generator()


@pytest.fixture(scope="session")
def subjects():
    return _cache.bench_subjects()


@pytest.fixture(scope="session")
def campaign(cv_records):
    return _cache.load_campaign()
