"""Serving throughput benchmark: sequential single-session inference
vs. the micro-batched multi-session server.

Both paths consume the same pre-generated cube frames through
``feed_cube``/``submit_cube`` so the comparison isolates the inference
path (windowing + network) -- preprocessing cost is identical per frame
either way and would only dilute the ratio.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serving.py --json \
        benchmarks/results/bench_serving.json

The JSON summary records frames/sec for each path and the speedup; the
acceptance target is >= 2x for 8 batched sessions.
"""

from __future__ import annotations

import argparse
import os
import time
from typing import List, Optional

import numpy as np

from repro.config import DspConfig, ModelConfig, RadarConfig
from repro.core.regressor import HandJointRegressor
from repro.dsp.radar_cube import CubeBuilder
from repro.perf import write_bench_json
from repro.serving import FrameWindow, InferenceServer, ServingConfig


def bench_configs():
    """A mid-sized stack: big enough to be real work, small enough for
    a benchmark that runs in seconds."""
    radar = RadarConfig(samples_per_chirp=32, chirp_loops=8)
    dsp = DspConfig(
        range_bins=16, doppler_bins=4, azimuth_bins=8, elevation_bins=8,
        segment_frames=2,
    )
    model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1,
        feature_dim=32, lstm_hidden=32,
    )
    return radar, dsp, model


def make_cube_frames(
    dsp: DspConfig, sessions: int, frames: int, seed: int
) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.abs(
        rng.normal(
            size=(
                sessions, frames, dsp.doppler_bins, dsp.range_bins,
                dsp.angle_bins_total,
            )
        )
    ).astype(np.float32)


def run_sequential(
    regressor: HandJointRegressor, dsp: DspConfig, feeds: np.ndarray
) -> dict:
    """Each session independently: window + batch-of-one forward."""
    start = time.perf_counter()
    poses = 0
    for session_frames in feeds:
        window = FrameWindow(dsp.segment_frames, hop_frames=1)
        for frame in session_frames:
            segment = window.push(frame)
            if segment is not None:
                regressor.predict(segment[None])
                poses += 1
    elapsed = time.perf_counter() - start
    frames_total = feeds.shape[0] * feeds.shape[1]
    return {
        "frames": frames_total,
        "poses": poses,
        "elapsed_s": elapsed,
        "frames_per_s": frames_total / elapsed,
        "poses_per_s": poses / elapsed,
    }


def run_batched(
    regressor: HandJointRegressor,
    builder: CubeBuilder,
    feeds: np.ndarray,
) -> dict:
    """All sessions through the server, one micro-batch per tick."""
    sessions, frames = feeds.shape[0], feeds.shape[1]
    server = InferenceServer(
        builder, regressor,
        ServingConfig(
            max_batch_size=sessions,
            queue_capacity=4 * sessions,
            policy="block",
            enable_cache=False,
        ),
    )
    ids = [server.open_session(f"bench-{i}") for i in range(sessions)]
    start = time.perf_counter()
    poses = 0
    for tick in range(frames):
        for i, session_id in enumerate(ids):
            server.submit_cube(session_id, feeds[i, tick])
        poses += len(server.step())
    poses += len(server.drain())
    elapsed = time.perf_counter() - start
    frames_total = sessions * frames
    stats = server.stats()
    return {
        "frames": frames_total,
        "poses": poses,
        "elapsed_s": elapsed,
        "frames_per_s": frames_total / elapsed,
        "poses_per_s": poses / elapsed,
        "batches": stats["counters"]["batches"],
        "batch_mean": stats["histograms"]["batch_size"]["mean"],
        "latency_p50_ms": stats["histograms"]["latency_s"]["p50"] * 1e3,
        "latency_p99_ms": stats["histograms"]["latency_s"]["p99"] * 1e3,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=8)
    parser.add_argument("--frames", type=int, default=40,
                        help="cube frames per session")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N timing repeats")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", dest="json_path",
        default=os.path.join(
            os.path.dirname(__file__), "results", "bench_serving.json"
        ),
    )
    args = parser.parse_args(argv)

    radar, dsp, model = bench_configs()
    builder = CubeBuilder(radar, dsp)
    regressor = HandJointRegressor(dsp, model, seed=1)
    regressor.eval()
    feeds = make_cube_frames(dsp, args.sessions, args.frames, args.seed)

    # Warm-up (first-call allocations, BLAS thread spin-up).
    run_sequential(regressor, dsp, feeds[:1, : 2 * dsp.segment_frames])

    sequential = min(
        (run_sequential(regressor, dsp, feeds)
         for _ in range(args.repeats)),
        key=lambda r: r["elapsed_s"],
    )
    batched = min(
        (run_batched(regressor, builder, feeds)
         for _ in range(args.repeats)),
        key=lambda r: r["elapsed_s"],
    )
    speedup = batched["frames_per_s"] / sequential["frames_per_s"]

    summary = {
        "sessions": args.sessions,
        "frames_per_session": args.frames,
        "sequential": sequential,
        "batched": batched,
        "speedup": speedup,
    }
    print(
        f"sequential: {sequential['frames_per_s']:8.1f} frames/s "
        f"({sequential['poses']} poses in "
        f"{sequential['elapsed_s']:.3f}s)"
    )
    print(
        f"batched:    {batched['frames_per_s']:8.1f} frames/s "
        f"({batched['poses']} poses in {batched['elapsed_s']:.3f}s, "
        f"batch mean {batched['batch_mean']:.1f})"
    )
    print(f"speedup:    {speedup:.2f}x")

    write_bench_json(args.json_path, summary)
    print(f"summary -> {args.json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
