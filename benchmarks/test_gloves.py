"""Paper Sec. VI-G: impact of gloves.

Paper result: with silk/cotton gloves (test-only, zero-shot) accuracy
drops to 28.6 mm MPJPE and 86.3 % PCK overall -- the glove fabric adds
its own returns and blurs the sensed hand, hitting the fingers hardest
while the palm stays comparatively accurate.
"""

import _cache
from repro.data.collection import CaptureOptions
from repro.eval import experiments
from repro.eval.report import render_table


def _compute(regressor, generator):
    subjects = _cache.condition_subjects()
    gloves = experiments.glove_experiment(
        regressor, generator, subjects, segments_per_user=12
    )
    baseline = experiments.evaluate_condition(
        regressor, generator, subjects,
        CaptureOptions(environment="lab"),
        segments_per_user=12,
    )
    return {
        "gloves": gloves,
        "baseline_mpjpe_mm": baseline["mpjpe_mm"],
        "baseline_pck_percent": baseline["pck_percent"],
    }


def test_gloves(benchmark, primary_regressor, generator):
    result = _cache.memoize_json(
        "gloves", lambda: _compute(primary_regressor, generator)
    )
    gloves = result["gloves"]

    rows = [
        [
            "bare hand",
            f"{result['baseline_mpjpe_mm']:.1f}",
            f"{result['baseline_pck_percent']:.1f}",
            "trained condition",
        ]
    ]
    for name in ("silk", "cotton", "overall"):
        entry = gloves[name]
        paper = "paper overall: 28.6 / 86.3" if name == "overall" else ""
        rows.append(
            [f"glove: {name}", f"{entry['mpjpe_mm']:.1f}",
             f"{entry['pck_percent']:.1f}", paper]
        )
    _cache.record(
        "gloves",
        render_table(
            ["condition", "MPJPE (mm)", "PCK (%)", "reference"],
            rows,
            title="Sec. VI-G: impact of gloves (zero-shot)",
        ),
    )

    # Shape: gloves degrade accuracy relative to the bare hand, but the
    # basic pose is still recovered.
    assert gloves["overall"]["mpjpe_mm"] > result["baseline_mpjpe_mm"]
    assert gloves["overall"]["pck_percent"] < (
        result["baseline_pck_percent"]
    )
    assert gloves["overall"]["pck_percent"] > 30.0

    segments = _cache.load_campaign().segments[:8]
    benchmark(lambda: primary_regressor.predict(segments))
