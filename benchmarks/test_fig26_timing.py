"""Paper Fig. 26: time consumption CDF.

Paper result (on their desktop + 3090 Ti): 459.6 ms average for 3-D
skeleton generation, 353.1 ms for mesh reconstruction, 812.7 ms overall
with 90 % of runs under ~810 ms. Mesh reconstruction does not add
significant extra delay over the skeleton stage.

Absolute times differ on this numpy/CPU stack; the reproduced shape is
the stage split (mesh cheaper than or comparable to skeleton; overall =
sum) and a tight 90th percentile.
"""

import _cache
from repro.core.pipeline import MmHand
from repro.config import SystemConfig
from repro.eval import experiments
from repro.eval.report import render_table


def test_fig26_time_consumption(benchmark, cv_records):
    regressor = cv_records[0]["regressor"]
    reconstructor = _cache.load_mesh_reconstructor()
    system = MmHand(
        SystemConfig(radar=_cache.BENCH_RADAR, dsp=_cache.BENCH_DSP,
                     model=_cache.BENCH_MODEL),
        regressor,
        reconstructor,
    )
    segments = _cache.load_campaign().segments[:20]
    result = experiments.timing_experiment(system, segments)

    rows = [
        ["hand skeleton", f"{result['mean_skeleton_ms']:.1f}",
         "paper: 459.6 (GPU stack)"],
        ["hand mesh", f"{result['mean_mesh_ms']:.1f}",
         "paper: 353.1"],
        ["overall", f"{result['mean_overall_ms']:.1f}",
         "paper: 812.7"],
        ["overall p90", f"{result['p90_overall_ms']:.1f}",
         "paper: ~810"],
    ]
    _cache.record(
        "fig26_timing",
        render_table(
            ["stage", "mean time (ms)", "reference"],
            rows,
            title="Fig. 26: per-segment time consumption",
        ),
    )

    # Shape: mesh reconstruction does not dominate; overall = sum of
    # stages; the timing distribution is tight.
    assert result["mean_mesh_ms"] < 2.0 * result["mean_skeleton_ms"]
    assert result["mean_overall_ms"] == (
        result["mean_skeleton_ms"] + result["mean_mesh_ms"]
    )
    assert result["p90_overall_ms"] < 4.0 * result["mean_overall_ms"]

    # Benchmark the full per-segment latency (skeleton + mesh).
    segment = segments[:1]

    def run_once():
        skeletons, _ = system.estimate_skeletons(segment)
        system.reconstruct_meshes(skeletons)

    benchmark(run_once)
