"""Shared artifact cache for the benchmark harness.

Reproducing the paper's tables/figures needs a trained system: the main
campaign dataset, five cross-validation folds of the joint regressor,
and a fitted mesh reconstructor. Building all of that takes tens of
minutes on one CPU core, so this module builds it once into
``<repo>/.cache`` and every benchmark loads from there. Delete the cache
directory to force a full rebuild, or run ``python benchmarks/_cache.py``
to build it ahead of time.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List

import numpy as np

from repro.config import (
    CampaignConfig,
    DspConfig,
    ModelConfig,
    RadarConfig,
    TrainConfig,
)
from repro.core.mesh_recovery import MeshReconstructor
from repro.core.regressor import HandJointRegressor
from repro.core.training import Trainer
from repro.data.collection import CampaignGenerator
from repro.data.dataset import HandPoseDataset
from repro.data.splits import kfold_user_splits
from repro.hand.subjects import make_subjects
from repro.nn.serialization import load_state, save_state

CACHE_DIR = os.path.join(os.path.dirname(__file__), os.pardir, ".cache")

#: The benchmark-scale system configuration: paper radar parameters,
#: scaled-down cube and network, 10 users as in the paper.
BENCH_RADAR = RadarConfig()
BENCH_DSP = DspConfig()
BENCH_MODEL = ModelConfig()
BENCH_TRAIN = TrainConfig(epochs=20, batch_size=16, seed=0)
BENCH_CAMPAIGN = CampaignConfig(num_users=10, segments_per_user=120)
NUM_FOLDS = 5


def _path(name: str) -> str:
    return os.path.join(CACHE_DIR, name)


def make_generator() -> CampaignGenerator:
    return CampaignGenerator(BENCH_RADAR, BENCH_DSP, BENCH_CAMPAIGN)


def bench_subjects():
    return make_subjects(BENCH_CAMPAIGN.num_users, seed=BENCH_CAMPAIGN.seed)


def make_regressor(seed: int = 0) -> HandJointRegressor:
    return HandJointRegressor(BENCH_DSP, BENCH_MODEL, seed=seed)


def load_campaign(verbose: bool = True) -> HandPoseDataset:
    """The main 10-user campaign dataset (built on first use)."""
    path = _path("campaign.npz")
    if os.path.exists(path):
        return HandPoseDataset.load(path)
    if verbose:
        print("[cache] generating campaign dataset "
              f"({BENCH_CAMPAIGN.num_users} users x "
              f"{BENCH_CAMPAIGN.segments_per_user} segments)...",
              flush=True)
    dataset = make_generator().generate(subjects=bench_subjects())
    os.makedirs(CACHE_DIR, exist_ok=True)
    dataset.save(path)
    return dataset


def load_cv_records(verbose: bool = True) -> List[Dict]:
    """Five-fold CV records: trained regressors, test sets, predictions.

    Identical in structure to :func:`repro.core.training.kfold_by_user`'s
    output, but persisted per fold.
    """
    dataset = load_campaign(verbose)
    folds = kfold_user_splits(dataset.user_ids, NUM_FOLDS)
    records = []
    for fold_id, (train_idx, test_idx, test_users) in enumerate(folds):
        weights = _path(f"fold{fold_id}_weights.npz")
        preds_path = _path(f"fold{fold_id}_predictions.npz")
        regressor = make_regressor(seed=fold_id)
        test = dataset.subset(test_idx)
        if os.path.exists(weights) and os.path.exists(preds_path):
            load_state(regressor, weights)
            regressor.eval()
            predictions = np.load(preds_path)["predictions"]
        else:
            if verbose:
                print(f"[cache] training fold {fold_id} "
                      f"(test users {test_users})...", flush=True)
            trainer = Trainer(regressor, BENCH_TRAIN)
            trainer.fit(dataset.subset(train_idx))
            predictions = trainer.predict(test)
            os.makedirs(CACHE_DIR, exist_ok=True)
            save_state(regressor, weights)
            np.savez_compressed(preds_path, predictions=predictions)
        records.append(
            {
                "fold": fold_id,
                "test_users": test_users,
                "regressor": regressor,
                "test": test,
                "predictions": predictions,
                "train_result": None,
            }
        )
    return records


def load_primary_regressor(verbose: bool = True) -> HandJointRegressor:
    """Fold 0's trained regressor (used by the condition experiments)."""
    return load_cv_records(verbose)[0]["regressor"]


def load_mesh_reconstructor(verbose: bool = True) -> MeshReconstructor:
    """A fitted mesh reconstructor (self-trained against the hand model)."""
    reconstructor = MeshReconstructor(seed=0)
    shape_path = _path("meshrec_shape.npz")
    pose_path = _path("meshrec_pose.npz")
    if os.path.exists(shape_path) and os.path.exists(pose_path):
        load_state(reconstructor.shape_net, shape_path)
        load_state(reconstructor.pose_net, pose_path)
        reconstructor._fitted = True
        return reconstructor
    if verbose:
        print("[cache] fitting mesh reconstructor...", flush=True)
    reconstructor.fit(steps=400, batch_size=32)
    os.makedirs(CACHE_DIR, exist_ok=True)
    save_state(reconstructor.shape_net, shape_path)
    save_state(reconstructor.pose_net, pose_path)
    return reconstructor


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def memoize_json(name: str, compute) -> dict:
    """Cache an experiment's summarised results as JSON.

    Heavy experiment sweeps (condition data generation + prediction) run
    once; repeat benchmark invocations reload the summary. Delete
    ``.cache/results_<name>.json`` to recompute.
    """
    path = _path(f"results_{name}.json")
    if os.path.exists(path):
        with open(path) as fh:
            return json.load(fh)
    result = compute()
    os.makedirs(CACHE_DIR, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, default=float)
    return result


def record(name: str, text: str) -> None:
    """Write a rendered table/figure to ``benchmarks/results`` and echo it
    (visible under ``pytest -s`` and collected into EXPERIMENTS.md)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text, flush=True)


def condition_subjects(count: int = 4):
    """Subject subset used by the condition sweeps (keeps benches fast)."""
    return bench_subjects()[:count]


def build_all(verbose: bool = True) -> None:
    """Build every cached artifact (dataset, CV folds, mesh nets)."""
    load_cv_records(verbose)
    load_mesh_reconstructor(verbose)
    if verbose:
        print("[cache] complete.", flush=True)


if __name__ == "__main__":
    build_all()
