"""Paper Fig. 19: MPJPE and 3D-PCK vs hand angle (paper Fig. 18 setup).

Paper result: errors grow with the magnitude of the angle and rise
sharply beyond 30 degrees (angle-estimation sensitivity falls with
sin(theta)); within +/-30 degrees the averages stay at 17.95 mm MPJPE
and 95.78 % PCK, close to boresight performance.
"""

import numpy as np

import _cache
from repro.eval import experiments
from repro.eval.report import render_series


def _compute(regressor, generator):
    subjects = _cache.condition_subjects()
    return experiments.angle_sweep(
        regressor, generator, subjects,
        angle_bins_deg=(-37.5, -22.5, -7.5, 7.5, 22.5, 37.5),
        distance_m=0.40,
        segments_per_user=10,
    )


def test_fig19_angle_sweep(benchmark, primary_regressor, generator):
    result = _cache.memoize_json(
        "fig19_angle", lambda: _compute(primary_regressor, generator)
    )
    rows = result["rows"]

    text = render_series(
        [row["angle_deg"] for row in rows],
        {
            "MPJPE (mm)": [r["mpjpe_mm"] for r in rows],
            "PCK (%)": [r["pck_percent"] for r in rows],
        },
        x_label="angle bin centre (deg)",
        y_label="",
        title="Fig. 19: accuracy vs hand angle at 40 cm "
              "(paper: sharp degradation beyond 30 deg)",
    )
    inner = [r for r in rows if abs(r["angle_deg"]) < 30.0]
    inner_mpjpe = np.mean([r["mpjpe_mm"] for r in inner])
    inner_pck = np.mean([r["pck_percent"] for r in inner])
    text += (
        f"\nwithin +/-30 deg: MPJPE {inner_mpjpe:.1f} mm "
        f"(paper 17.95), PCK {inner_pck:.1f} % (paper 95.78)"
    )
    _cache.record("fig19_angle", text)

    outer = [r for r in rows if abs(r["angle_deg"]) > 30.0]
    outer_mpjpe = np.mean([r["mpjpe_mm"] for r in outer])
    centre = [r for r in rows if abs(r["angle_deg"]) < 15.0]
    centre_mpjpe = np.mean([r["mpjpe_mm"] for r in centre])

    # Shape: outside +/-30 deg is clearly worse than boresight.
    assert outer_mpjpe > centre_mpjpe * 1.15
    assert outer_mpjpe > inner_mpjpe

    segments = _cache.load_campaign().segments[:8]
    benchmark(lambda: primary_regressor.predict(segments))
