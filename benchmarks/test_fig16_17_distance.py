"""Paper Figs. 16-17: MPJPE and 3D-PCK vs hand-radar distance.

Paper result: performance is stable from 20 to 60 cm, then MPJPE rises
and PCK falls beyond 60 cm (weaker reflections, and the pre-processing
band is tuned to interaction range); at every distance the palm is
easier than the fingers.
"""

import numpy as np

import _cache
from repro.eval import experiments
from repro.eval.report import render_series


def _compute(regressor, generator):
    subjects = _cache.condition_subjects()
    distances = [0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80]
    sweep = experiments.distance_sweep(
        regressor, generator, subjects, distances_m=distances,
        segments_per_user=10,
    )
    return sweep


def test_fig16_17_distance_sweep(benchmark, primary_regressor, generator):
    result = _cache.memoize_json(
        "fig16_17_distance",
        lambda: _compute(primary_regressor, generator),
    )
    rows = result["rows"]

    text = render_series(
        [row["distance_m"] * 100 for row in rows],
        {
            "overall MPJPE (mm)": [r["mpjpe_mm"] for r in rows],
            "palm MPJPE (mm)": [r["palm_mpjpe_mm"] for r in rows],
            "finger MPJPE (mm)": [r["fingers_mpjpe_mm"] for r in rows],
            "overall PCK (%)": [r["pck_percent"] for r in rows],
        },
        x_label="distance (cm)",
        y_label="",
        title="Figs. 16-17: accuracy vs distance "
              "(paper: stable 20-60 cm, degrades beyond)",
    )
    _cache.record("fig16_17_distance", text)

    near = [r for r in rows if r["distance_m"] <= 0.45]
    far = [r for r in rows if r["distance_m"] >= 0.70]
    near_mpjpe = np.mean([r["mpjpe_mm"] for r in near])
    far_mpjpe = np.mean([r["mpjpe_mm"] for r in far])
    near_pck = np.mean([r["pck_percent"] for r in near])
    far_pck = np.mean([r["pck_percent"] for r in far])

    # Shape: clear degradation beyond 60 cm, palm better than fingers
    # in the trained band.
    assert far_mpjpe > near_mpjpe * 1.3
    assert far_pck < near_pck
    for row in near:
        assert row["palm_mpjpe_mm"] < row["fingers_mpjpe_mm"]

    segments = _cache.load_campaign().segments[:8]
    benchmark(lambda: primary_regressor.predict(segments))
