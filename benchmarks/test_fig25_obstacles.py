"""Paper Fig. 25: impact of obstacles in the line of sight.

Paper result: behind A4 paper and cloth mmHand still works (23.4 mm and
25.1 mm -- slightly worse than line-of-sight); behind a thin wooden
board it degrades markedly (35.8 mm / 80.3 %) because the board both
attenuates and reflects mmWave energy. This is the none-line-of-sight
capability vision methods lack.
"""

import _cache
from repro.eval import experiments
from repro.eval.report import render_table


def _compute(regressor, generator):
    subjects = _cache.condition_subjects()
    return experiments.obstacle_experiment(
        regressor, generator, subjects, segments_per_user=10
    )


def test_fig25_obstacles(benchmark, primary_regressor, generator):
    result = _cache.memoize_json(
        "fig25_obstacles", lambda: _compute(primary_regressor, generator)
    )

    paper = {
        "a4_paper": "paper: 23.4 mm",
        "cloth": "paper: 25.1 mm",
        "wood_board": "paper: 35.8 mm / 80.3 %",
    }
    rows = [
        [
            name,
            f"{result[name]['mpjpe_mm']:.1f}",
            f"{result[name]['pck_percent']:.1f}",
            paper[name],
        ]
        for name in ("a4_paper", "cloth", "wood_board")
    ]
    _cache.record(
        "fig25_obstacles",
        render_table(
            ["occluder", "MPJPE (mm)", "PCK (%)", "reference"],
            rows,
            title="Fig. 25: accuracy behind occluders",
        ),
    )

    # Shape: paper/cloth mildly affected; the wooden board is clearly
    # the worst occluder.
    assert result["wood_board"]["mpjpe_mm"] > result["a4_paper"]["mpjpe_mm"]
    assert result["wood_board"]["mpjpe_mm"] > result["cloth"]["mpjpe_mm"]
    assert result["wood_board"]["pck_percent"] < (
        result["a4_paper"]["pck_percent"]
    )

    segments = _cache.load_campaign().segments[:8]
    benchmark(lambda: primary_regressor.predict(segments))
