"""Paper Fig. 24: impact of the environment.

Paper result: performance in the playground (empty), corridor (sparse)
and classroom (dense static clutter + moving people) differs only
slightly -- at most 3.2 mm between playground and classroom -- because
the bandpass filter localises the hand's range band and ignores
background interference.
"""

import numpy as np

import _cache
from repro.eval import experiments
from repro.eval.report import render_table


def test_fig24_environments(benchmark, cv_records):
    result = experiments.environment_experiment(cv_records)

    rows = [
        [env, f"{entry['mpjpe_mm']:.1f}", f"{entry['pck_percent']:.1f}"]
        for env, entry in result.items()
    ]
    _cache.record(
        "fig24_environment",
        render_table(
            ["environment", "MPJPE (mm)", "PCK (%)"],
            rows,
            title="Fig. 24: accuracy per environment "
                  "(paper: difference <= 3.2 mm)",
        ),
    )

    env_mpjpes = [
        entry["mpjpe_mm"]
        for env, entry in result.items()
        if env != "overall"
    ]
    assert len(env_mpjpes) >= 3
    # Shape: environments differ only modestly (the filter removes
    # background clutter), mirroring the paper's <= 3.2 mm gap.
    assert max(env_mpjpes) - min(env_mpjpes) < 10.0

    preds = np.concatenate([r["predictions"] for r in cv_records])
    labels = np.concatenate([r["test"].labels for r in cv_records])
    from repro.eval.metrics import mpjpe

    benchmark(lambda: mpjpe(preds, labels))
