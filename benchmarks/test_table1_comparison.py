"""Paper Table I: comparison with existing methods.

The paper compares mmHand (18.3 mm) against cited vision baselines
(8.6-15.2 mm on MSRA/ICVL) and against two wireless methods evaluated on
re-collected data: mm4Arm (4.07 mm on its own forearm-facing setup vs
mmHand 20.4 mm) and HandFi (20.7 mm vs mmHand 19.0 mm).

The reproduction mirrors that protocol: vision numbers are cited, and
simplified mm4Arm-style (Doppler-only) and HandFi-style (coarse
resolution) pipelines are trained and tested on the same simulated
split as mmHand. Expected shape: mmHand clearly beats both simplified
wireless baselines on full-hand pose (they lack the spatial detail),
while the cited vision numbers remain better than all RF methods.
"""

import _cache
from repro.baselines import (
    VISION_BASELINES,
    HandFiBaseline,
    Mm4ArmBaseline,
)
from repro.eval.metrics import mpjpe
from repro.eval.report import render_table


def _compute(cv_records):
    record = cv_records[0]
    campaign = _cache.load_campaign()
    test_users = set(record["test_users"])
    train_idx = [
        i for i, uid in enumerate(campaign.user_ids)
        if uid not in test_users
    ]
    train = campaign.subset(train_idx)
    test = record["test"]

    mmhand_mm = mpjpe(record["predictions"], test.labels)

    mm4arm = Mm4ArmBaseline(hidden=128)
    mm4arm.fit(train, epochs=25)
    mm4arm_mm = mpjpe(mm4arm.predict(test.segments), test.labels)

    handfi = HandFiBaseline(hidden=128)
    handfi.fit(train, epochs=25)
    handfi_mm = mpjpe(handfi.predict(test.segments), test.labels)

    return {
        "mmhand_mm": mmhand_mm,
        "mm4arm_mm": mm4arm_mm,
        "handfi_mm": handfi_mm,
    }


def test_table1_comparison(benchmark, cv_records):
    result = _cache.memoize_json(
        "table1", lambda: _compute(cv_records)
    )

    rows = []
    for ref in VISION_BASELINES:
        rows.append(
            [ref.method, ref.dataset, f"{ref.mpjpe_mm} (cited)",
             f"paper mmHand: {ref.mmhand_paper_mm}"]
        )
    rows.append(
        ["mm4Arm (simplified)", "simulated",
         f"{result['mm4arm_mm']:.1f}",
         f"paper: mm4Arm 4.07 vs mmHand 20.4"]
    )
    rows.append(
        ["HandFi (simplified)", "simulated",
         f"{result['handfi_mm']:.1f}",
         f"paper: HandFi 20.7 vs mmHand 19.0"]
    )
    rows.append(
        ["mmHand (this repro)", "simulated",
         f"{result['mmhand_mm']:.1f}", "paper: 18.3"]
    )
    _cache.record(
        "table1_comparison",
        render_table(
            ["method", "dataset", "MPJPE (mm)", "reference"],
            rows,
            title="Table I: comparison with existing methods",
        ),
    )

    # Shape: mmHand beats both simplified wireless baselines on the
    # same data (they discard spatial information mmHand uses).
    assert result["mmhand_mm"] < result["mm4arm_mm"]
    assert result["mmhand_mm"] < result["handfi_mm"]
    # Cited vision methods stay better than RF approaches, as in Table I.
    best_vision = min(r.mpjpe_mm for r in VISION_BASELINES)
    assert best_vision < result["mmhand_mm"]

    # Benchmark: the HandFi-style feature reduction (cheap, stable op).
    segments = cv_records[0]["test"].segments[:16]
    baseline = HandFiBaseline()
    benchmark(lambda: baseline.features(segments))
