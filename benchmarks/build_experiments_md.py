"""Assemble EXPERIMENTS.md from the recorded benchmark outputs.

Run after ``pytest benchmarks/ --benchmark-only``: every benchmark writes
its rendered paper-vs-measured table to ``benchmarks/results/``; this
script stitches them into the repository's EXPERIMENTS.md with the
paper-side context for each artefact.

Usage:
    python benchmarks/build_experiments_md.py
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir,
                      "EXPERIMENTS.md")

#: (result file stem, section heading, paper-side summary)
SECTIONS = [
    (
        "fig12_13_overall",
        "Figs. 12-13 — per-participant MPJPE and 3D-PCK",
        "Paper: 18.3 mm mean MPJPE (std 2.96 mm), 95.1 % PCK@40mm "
        "(std 1.17 %), with only ~2.9 mm / 3.3 % between the best and "
        "worst user.",
    ),
    (
        "fig14_pck_curve",
        "Fig. 14 — 3D-PCK vs threshold and AUC",
        "Paper: PCK rises steeply, reaching 95.1 % at 40 mm; AUC 0.722 "
        "(palm) / 0.691 (fingers) / 0.707 (overall); the palm is easier "
        "than the fingers.",
    ),
    (
        "fig15_cdf",
        "Fig. 15 — CDF of per-joint errors",
        "Paper: 90.2 % of joint errors fall within 30 mm.",
    ),
    (
        "table1_comparison",
        "Table I — comparison with existing methods",
        "Paper: mmHand 18.3 mm vs cited vision methods 8.6-15.2 mm; on "
        "re-collected wireless setups, mm4Arm 4.07 vs mmHand 20.4, "
        "HandFi 20.7 vs mmHand 19.0.",
    ),
    (
        "fig16_17_distance",
        "Figs. 16-17 — distance sweep (20-80 cm)",
        "Paper: stable from 20 to 60 cm, degrading beyond; palm joints "
        "beat finger joints at every distance. **Reproduction "
        "divergence:** the degradation onset is earlier (beyond ~45 cm "
        "instead of ~60 cm) and far sharper — at simulation scale the "
        "network is trained only on the paper's 20-40 cm interaction "
        "band and does not extrapolate in range the way the paper's "
        "1.5M-frame model does; the qualitative shape (flat inside the "
        "trained band, palm < fingers, monotonic degradation beyond) "
        "holds and is what the benchmark asserts.",
    ),
    (
        "fig19_angle",
        "Fig. 19 — angle sweep (±45°)",
        "Paper: error grows with |angle| and rises sharply past 30°; "
        "within ±30°: 17.95 mm / 95.78 %. **Reproduction divergence:** "
        "the monotonic growth with |angle| and the sharp loss past 30° "
        "reproduce, but absolute errors are much larger than the "
        "paper's — training captures place the hand near boresight, so "
        "off-axis positions are outside the label distribution at "
        "simulation scale.",
    ),
    (
        "fig20_21_body",
        "Figs. 20-21 — body position",
        "Paper: type 1 (body behind hand) 19.1 mm / 93.6 %; type 2 "
        "(body aside) 18.1 mm / 95.4 % — an insignificant gap thanks to "
        "range filtering.",
    ),
    (
        "gloves",
        "Sec. VI-G — gloves",
        "Paper: zero-shot on silk/cotton gloves degrades to 28.6 mm / "
        "86.3 % overall; the basic pose is still recovered.",
    ),
    (
        "handheld",
        "Sec. VI-H — handheld objects",
        "Paper (Fig. 23): palm-centred objects (ball, case) barely "
        "matter; a pen reads as an extra finger; a power bank corrupts "
        "the fingers.",
    ),
    (
        "fig24_environment",
        "Fig. 24 — environments",
        "Paper: playground / corridor / classroom differ by at most "
        "3.2 mm.",
    ),
    (
        "fig25_obstacles",
        "Fig. 25 — obstacles",
        "Paper: A4 paper 23.4 mm, cloth 25.1 mm (both mild); wooden "
        "board 35.8 mm / 80.3 % (marked degradation).",
    ),
    (
        "fig26_timing",
        "Fig. 26 — time consumption",
        "Paper (desktop + RTX 3090 Ti): skeleton 459.6 ms, mesh "
        "353.1 ms, overall 812.7 ms, 90 % under ~810 ms; the mesh stage "
        "adds no significant extra delay.",
    ),
    (
        "ablations",
        "Ablations (beyond the paper)",
        "Design-choice probes DESIGN.md Sec. 5 calls out: attention "
        "mechanisms, kinematic loss, zoom-FFT, segment length.",
    ),
    (
        "error_analysis",
        "Error decomposition (beyond the paper)",
        "PA-MPJPE vs raw MPJPE separates articulated-pose error from "
        "global hand localisation; bone-length error shows how well the "
        "kinematic loss preserves rigidity; the per-joint profile "
        "identifies the hardest joints (fingertips).",
    ),
    (
        "significance",
        "Statistical significance (beyond the paper)",
        "Paired bootstrap over the shared test set: the mmHand-vs-"
        "coarse-baseline gap of Table I is statistically significant.",
    ),
]

HEADER = """\
# EXPERIMENTS — paper vs measured

Every table and figure of the paper's evaluation (Sec. VI), regenerated
by `pytest benchmarks/ --benchmark-only` on the simulated substrate
(see DESIGN.md for the substitutions). Absolute numbers come from a
physics simulator plus a scaled-down numpy network trained on ~100x less
data than the paper's 1.5M real frames on a 3090 Ti, so they are not
expected to match; the reproduced quantity is the *shape* of each
result — orderings, degradation points and relative factors — which each
benchmark also asserts programmatically.

Summary of the headline comparison (pooled over the five CV folds):

| quantity | paper | this reproduction |
|---|---|---|
| overall MPJPE (5-fold CV) | 18.3 mm | 28.8 mm |
| overall 3D-PCK@40mm | 95.1 % | 79.3 % |
| palm MPJPE / PCK | (easier than fingers) | 17.9 mm / 98.7 % |
| finger MPJPE / PCK | (harder than palm) | 33.1 mm / 71.6 % |
| AUC palm / fingers / overall | 0.722 / 0.691 / 0.707 | 0.701 / 0.484 / 0.546 |

The palm-side numbers land on the paper (palm AUC 0.701 vs 0.722); the
finger-side gap reflects the simulator's angular information content and
the ~100x-smaller training campaign. Every qualitative ordering the
paper reports is reproduced and asserted in the benchmarks.

Regenerate this file with
`python benchmarks/build_experiments_md.py` after running the
benchmarks.
"""


def main() -> None:
    parts = [HEADER]
    missing = []
    for stem, heading, context in SECTIONS:
        path = os.path.join(RESULTS_DIR, f"{stem}.txt")
        parts.append(f"\n## {heading}\n\n{context}\n")
        if os.path.exists(path):
            with open(path) as fh:
                parts.append("```\n" + fh.read().strip() + "\n```\n")
        else:
            missing.append(stem)
            parts.append(
                "*(not yet measured — run `pytest benchmarks/ "
                "--benchmark-only`)*\n"
            )
    with open(OUTPUT, "w") as fh:
        fh.write("\n".join(parts))
    print(f"wrote {OUTPUT}" + (
        f" ({len(missing)} sections pending: {missing})" if missing
        else ""
    ))


if __name__ == "__main__":
    main()
