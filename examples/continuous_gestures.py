"""Continuous gesture reconstruction (paper Figs. 10-11).

Simulates a user flowing through a gesture sequence (fist -> point ->
open palm -> pinch) in front of the radar, runs the full pipeline (raw IF
frames -> radar cubes -> skeletons -> MANO meshes) and prints a compact
ASCII rendering of the reconstructed skeletons, frame by frame.

The joint regressor is trained briefly on matching simulated data first;
with the benchmark cache built (``python benchmarks/_cache.py``) you can
instead load a fully trained fold via ``--use-cache``.

Run:
    python examples/continuous_gestures.py [--use-cache]
"""

import argparse
import sys

import numpy as np

from repro import (
    CampaignConfig,
    CampaignGenerator,
    DspConfig,
    HandJointRegressor,
    MeshReconstructor,
    ModelConfig,
    RadarConfig,
    SystemConfig,
    TrainConfig,
    Trainer,
    make_subjects,
)
from repro.core.pipeline import MmHand
from repro.hand.animation import GestureSequence, Keyframe
from repro.hand.joints import FINGER_CHAINS
from repro.radar.radar import RadarSimulator
from repro.radar.scatterers import hand_scatterers
from repro.radar.scene import Scene


def ascii_skeleton(joints: np.ndarray, width: int = 40, height: int = 16) -> str:
    """Render a skeleton's y-z projection (front view) as ASCII art."""
    canvas = [[" "] * width for _ in range(height)]
    ys = joints[:, 1]
    zs = joints[:, 2]
    y_span = max(ys.max() - ys.min(), 1e-3)
    z_span = max(zs.max() - zs.min(), 1e-3)
    marks = {0: "W"}
    for finger, chain in FINGER_CHAINS.items():
        for j in chain[:-1]:
            marks[j] = "o"
        marks[chain[-1]] = finger[0].upper()
    for j, (y, z) in enumerate(zip(ys, zs)):
        col = int((y - ys.min()) / y_span * (width - 1))
        row = height - 1 - int((z - zs.min()) / z_span * (height - 1))
        canvas[row][col] = marks.get(j, "o")
    return "\n".join("".join(row) for row in canvas)


def train_quick_regressor(radar, dsp):
    subjects = make_subjects(1)
    generator = CampaignGenerator(
        radar, dsp, CampaignConfig(num_users=1, segments_per_user=80)
    )
    print("Training a quick regressor on simulated captures ...")
    dataset = generator.generate(subjects=subjects, seed=2)
    regressor = HandJointRegressor(dsp, ModelConfig())
    Trainer(regressor, TrainConfig(epochs=10, batch_size=16)).fit(dataset)
    return regressor


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--use-cache", action="store_true",
                        help="load the trained fold-0 regressor from "
                             "the benchmark cache")
    args = parser.parse_args()

    radar = RadarConfig()
    dsp = DspConfig()

    if args.use_cache:
        sys.path.insert(0, "benchmarks")
        import _cache

        regressor = _cache.load_primary_regressor()
        reconstructor = _cache.load_mesh_reconstructor()
    else:
        regressor = train_quick_regressor(radar, dsp)
        reconstructor = MeshReconstructor(seed=0)
        print("Fitting mesh-recovery networks ...")
        reconstructor.fit(steps=200, batch_size=24)

    system = MmHand(
        SystemConfig(radar=radar, dsp=dsp), regressor, reconstructor
    )

    # ------------------------------------------------------------------
    # Simulate the continuous gesture sequence of Fig. 11.
    # ------------------------------------------------------------------
    sequence = GestureSequence(
        [
            Keyframe(0.0, "fist"),
            Keyframe(0.8, "point"),
            Keyframe(1.6, "open_palm"),
            Keyframe(2.4, "pinch"),
        ],
        base_position=np.array([0.30, 0.0, 0.0]),
        seed=3,
    )
    num_frames = 4 * dsp.segment_frames
    poses = sequence.sample(radar.frame_period_s * 4, num_frames)
    shape = make_subjects(1)[0].hand_shape()
    sim = RadarSimulator(radar, seed=9)
    rng = np.random.default_rng(4)
    raw = []
    for i, pose in enumerate(poses):
        prev = poses[i - 1] if i else None
        hand = hand_scatterers(
            shape, pose, prev_pose=prev,
            frame_period_s=radar.frame_period_s * 4, rng=rng,
        )
        raw.append(sim.frame(Scene(hand=hand)))
    raw = np.stack(raw)

    print("\nRunning the full pipeline on the gesture sequence ...")
    output = system.process(raw)
    gestures = ("fist", "point", "open_palm", "pinch")
    for i, (skeleton, mesh, timing) in enumerate(
        zip(output.skeletons, output.meshes, output.timings)
    ):
        print(f"\n--- segment {i} (around gesture: {gestures[i]}) ---")
        print(ascii_skeleton(skeleton))
        span = skeleton[:, 2].max() - skeleton[:, 2].min()
        print(f"skeleton vertical span: {span * 100:.1f} cm | "
              f"mesh: {len(mesh.vertices)} verts | "
              f"skeleton {timing.skeleton_s * 1000:.0f} ms + "
              f"mesh {timing.mesh_s * 1000:.0f} ms")


if __name__ == "__main__":
    main()
