"""Special conditions: gloves and handheld objects (paper Secs. VI-G/H).

Trains a small regressor on bare-hand captures, then tests zero-shot on
users wearing silk/cotton gloves and holding the paper's four objects
(table-tennis ball, headphone case, pen, power bank), printing how each
condition degrades MPJPE / 3D-PCK -- the paper's qualitative finding is
that palm-centred objects barely matter while a pen reads as an extra
finger and a power bank corrupts the fingers.

Run:
    python examples/gloves_and_objects.py
"""

from repro import (
    CampaignConfig,
    CampaignGenerator,
    CaptureOptions,
    DspConfig,
    HandJointRegressor,
    ModelConfig,
    RadarConfig,
    TrainConfig,
    Trainer,
    make_subjects,
)
from repro.eval import experiments
from repro.eval.report import render_table


def main() -> None:
    radar = RadarConfig()
    dsp = DspConfig()
    subjects = make_subjects(2)
    generator = CampaignGenerator(
        radar, dsp, CampaignConfig(num_users=2, segments_per_user=70)
    )

    print("Training on bare-hand captures ...")
    dataset = generator.generate(subjects=subjects, seed=5)
    regressor = HandJointRegressor(dsp, ModelConfig())
    Trainer(regressor, TrainConfig(epochs=10, batch_size=16)).fit(dataset)

    baseline = experiments.evaluate_condition(
        regressor, generator, subjects,
        CaptureOptions(environment="lab"), segments_per_user=12,
    )
    print(f"\nBare hand: MPJPE {baseline['mpjpe_mm']:.1f} mm, "
          f"PCK {baseline['pck_percent']:.1f} %")

    print("\nZero-shot on gloves (paper Sec. VI-G):")
    gloves = experiments.glove_experiment(
        regressor, generator, subjects, segments_per_user=12
    )
    rows = [
        [name, f"{entry['mpjpe_mm']:.1f}", f"{entry['pck_percent']:.1f}"]
        for name, entry in gloves.items()
    ]
    print(render_table(["condition", "MPJPE (mm)", "PCK (%)"], rows))

    print("\nZero-shot with handheld objects (paper Sec. VI-H):")
    objects = experiments.handheld_experiment(
        regressor, generator, subjects, segments_per_user=10
    )
    rows = [
        [
            name,
            f"{entry['mpjpe_mm']:.1f}",
            f"{entry['fingers_mpjpe_mm']:.1f}",
            f"{entry['pck_percent']:.1f}",
        ]
        for name, entry in objects.items()
    ]
    print(
        render_table(
            ["object", "MPJPE (mm)", "finger MPJPE (mm)", "PCK (%)"],
            rows,
        )
    )
    print("\nExpected shape: palm-centred objects (ball, case) stay close "
          "to the bare-hand error;\nthe pen and power bank hit the "
          "fingers hardest, as in the paper's Fig. 23.")


if __name__ == "__main__":
    main()
