"""Gesture-driven UI control over a live radar stream.

Demonstrates the paper's motivating application: raw IF frames stream
into a :class:`~repro.core.streaming.StreamingEstimator` (sliding-window
skeleton estimation) and a debounced
:class:`~repro.apps.ui_control.GestureCommandMapper` turns stable
recognised gestures into interface commands.

The user "performs" point -> pinch -> open palm -> fist; the expected
command trace is cursor -> select -> release -> drag.

Run:
    python examples/ui_control_demo.py
"""

import numpy as np

from repro import (
    CampaignConfig,
    CampaignGenerator,
    DspConfig,
    GestureClassifier,
    GestureCommandMapper,
    HandJointRegressor,
    ModelConfig,
    RadarConfig,
    TrainConfig,
    Trainer,
    make_subjects,
)
from repro.core.streaming import StreamingEstimator
from repro.dsp.radar_cube import CubeBuilder
from repro.hand.animation import GestureSequence, Keyframe
from repro.radar.radar import RadarSimulator
from repro.radar.scatterers import hand_scatterers
from repro.radar.scene import Scene

SCRIPT = ("point", "pinch", "open_palm", "fist")


def main() -> None:
    radar = RadarConfig()
    dsp = DspConfig()
    subjects = make_subjects(1)
    generator = CampaignGenerator(
        radar, dsp, CampaignConfig(num_users=1, segments_per_user=80)
    )

    print("Training a quick regressor for the demo ...")
    dataset = generator.generate(subjects=subjects, seed=6)
    regressor = HandJointRegressor(dsp, ModelConfig())
    Trainer(regressor, TrainConfig(epochs=10, batch_size=16)).fit(dataset)

    # ------------------------------------------------------------------
    # Simulate the user's command sequence as a radar stream.
    # ------------------------------------------------------------------
    hold_s = dsp.segment_frames * radar.frame_period_s
    sequence = GestureSequence(
        [Keyframe(i * hold_s * 2, name) for i, name in enumerate(SCRIPT)],
        base_position=np.array([0.30, 0.0, 0.0]),
        seed=1,
    )
    num_frames = len(SCRIPT) * 2 * dsp.segment_frames
    poses = sequence.sample(radar.frame_period_s, num_frames)
    shape = subjects[0].hand_shape()
    sim = RadarSimulator(radar, seed=2)
    rng = np.random.default_rng(3)

    estimator = StreamingEstimator(
        CubeBuilder(radar, dsp), regressor, hop_frames=dsp.segment_frames
    )
    mapper = GestureCommandMapper(
        classifier=GestureClassifier(gestures=list(SCRIPT)),
        hold_frames=1,
    )

    print("\nStreaming frames through the estimator ...")
    events = []
    for i, pose in enumerate(poses):
        prev = poses[i - 1] if i else None
        frame = sim.frame(
            Scene(
                hand=hand_scatterers(
                    shape, pose, prev_pose=prev,
                    frame_period_s=radar.frame_period_s, rng=rng,
                )
            )
        )
        output = estimator.push(frame)
        if output is None:
            continue
        event = mapper.process(output.skeleton)
        label, confidence = mapper.classifier.classify(output.skeleton)
        print(
            f"frame {output.frame_index:3d}: gesture={label:10s} "
            f"confidence={confidence:.2f}"
            + (f"  -> COMMAND: {event.command}" if event else "")
        )
        if event:
            events.append(event.command)

    print(f"\nemitted commands: {events}")
    print("expected trace  : ['cursor', 'select', 'release', 'drag'] "
          "(order may locally vary with regressor noise)")


if __name__ == "__main__":
    main()
