"""Quickstart: simulate a capture campaign, train mmHand, evaluate, and
reconstruct a mesh.

Runs at a reduced scale (2 synthetic participants, a few dozen segments,
small network) so the whole script finishes in a few minutes on one CPU
core. The full-scale benchmark configuration lives in ``benchmarks/``.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import (
    CampaignConfig,
    CampaignGenerator,
    DspConfig,
    HandJointRegressor,
    MeshReconstructor,
    ModelConfig,
    RadarConfig,
    TrainConfig,
    Trainer,
    make_subjects,
)
from repro.eval.metrics import group_metrics


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Simulate the data-collection campaign (paper Sec. VI-A):
    #    participants perform continuous gestures 20-40 cm from the
    #    radar while radar + depth camera record synchronously.
    # ------------------------------------------------------------------
    radar = RadarConfig()
    dsp = DspConfig()
    subjects = make_subjects(2)
    generator = CampaignGenerator(
        radar, dsp, CampaignConfig(num_users=2, segments_per_user=60)
    )
    print("Generating simulated captures for 2 participants ...")
    dataset = generator.generate(subjects=subjects, seed=1)
    print(f"  {len(dataset)} radar-cube segments of shape "
          f"{dataset.segments.shape[1:]}")

    # ------------------------------------------------------------------
    # 2. Train the joint-regression network (mmSpaceNet + LSTM + the
    #    combined 3-D/kinematic loss).
    # ------------------------------------------------------------------
    train = dataset.for_user(1)
    test = dataset.for_user(2)
    regressor = HandJointRegressor(dsp, ModelConfig())
    trainer = Trainer(
        regressor, TrainConfig(epochs=8, batch_size=16, log_every=20)
    )
    print("Training (8 epochs at example scale) ...")
    result = trainer.fit(train, verbose=True)
    print(f"  final training loss: {result.final_loss:.4f}")

    # ------------------------------------------------------------------
    # 3. Evaluate on the held-out participant: MPJPE / 3D-PCK / AUC.
    # ------------------------------------------------------------------
    predictions = trainer.predict(test)
    groups = group_metrics(predictions, test.labels)
    print("\nHeld-out participant (cross-user, tiny training set):")
    for name in ("palm", "fingers", "overall"):
        g = groups[name]
        print(f"  {name:8s} MPJPE {g.mpjpe_mm:5.1f} mm   "
              f"3D-PCK@40mm {g.pck_percent:5.1f} %   AUC {g.auc:.3f}")

    # ------------------------------------------------------------------
    # 4. Reconstruct a 3-D hand mesh from a regressed skeleton (MANO).
    # ------------------------------------------------------------------
    print("\nFitting the mesh-recovery networks (self-supervised) ...")
    reconstructor = MeshReconstructor(seed=0)
    reconstructor.fit(steps=150, batch_size=24)
    skeleton = predictions[0]
    recovered = reconstructor.reconstruct(skeleton)
    mesh = recovered.mesh
    print(f"  mesh: {len(mesh.vertices)} vertices, "
          f"{len(mesh.faces)} faces")
    ik_err = np.linalg.norm(mesh.joints - skeleton, axis=1).mean() * 1000
    print(f"  inverse-kinematics joint consistency: {ik_err:.1f} mm")
    print(f"  shape parameters beta: {np.round(recovered.beta, 2)}")


if __name__ == "__main__":
    main()
