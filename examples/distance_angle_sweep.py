"""Robustness sweeps: distance and angle (paper Figs. 16/17/19).

Trains on the paper's nominal band (hand 20-40 cm in front of the radar,
near boresight), then evaluates at distances out to 80 cm and angles out
to +/-45 degrees. Expected shape, as in the paper: stable through
~60 cm then degrading (band edge + SNR), and degrading sharply beyond
+/-30 degrees (angle-estimation sensitivity falls off boresight).

Run:
    python examples/distance_angle_sweep.py
"""

from repro import (
    CampaignConfig,
    CampaignGenerator,
    DspConfig,
    HandJointRegressor,
    ModelConfig,
    RadarConfig,
    TrainConfig,
    Trainer,
    make_subjects,
)
from repro.eval import experiments
from repro.eval.report import render_series


def main() -> None:
    radar = RadarConfig()
    dsp = DspConfig()
    subjects = make_subjects(2)
    generator = CampaignGenerator(
        radar, dsp, CampaignConfig(num_users=2, segments_per_user=70)
    )

    print("Training on the nominal 20-40 cm interaction band ...")
    dataset = generator.generate(subjects=subjects, seed=8)
    regressor = HandJointRegressor(dsp, ModelConfig())
    Trainer(regressor, TrainConfig(epochs=10, batch_size=16)).fit(dataset)

    print("\nDistance sweep 20-80 cm (paper Figs. 16/17):")
    sweep = experiments.distance_sweep(
        regressor, generator, subjects,
        distances_m=[0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
        segments_per_user=8,
    )
    print(
        render_series(
            [row["distance_m"] * 100 for row in sweep["rows"]],
            {
                "overall MPJPE": [r["mpjpe_mm"] for r in sweep["rows"]],
                "palm MPJPE": [r["palm_mpjpe_mm"] for r in sweep["rows"]],
                "finger MPJPE": [
                    r["fingers_mpjpe_mm"] for r in sweep["rows"]
                ],
                "PCK": [r["pck_percent"] for r in sweep["rows"]],
            },
            x_label="distance (cm)",
            y_label="mm / %",
        )
    )

    print("\nAngle sweep -45..45 degrees at 40 cm (paper Fig. 19):")
    angles = experiments.angle_sweep(
        regressor, generator, subjects,
        angle_bins_deg=(-37.5, -22.5, -7.5, 7.5, 22.5, 37.5),
        segments_per_user=8,
    )
    print(
        render_series(
            [row["angle_deg"] for row in angles["rows"]],
            {
                "MPJPE": [r["mpjpe_mm"] for r in angles["rows"]],
                "PCK": [r["pck_percent"] for r in angles["rows"]],
            },
            x_label="angle (deg)",
            y_label="mm / %",
        )
    )


if __name__ == "__main__":
    main()
